//! Open-loop job-arrival generators: seeded, deterministic streams of
//! [`JobSpec`]s over the existing DAG generators.
//!
//! An *open-loop* generator fixes arrival times up front, independent of
//! how fast the system drains them — the regime where queueing delay and
//! sojourn time are meaningful (a closed loop would throttle arrivals to
//! the service rate and hide saturation). Two interarrival processes are
//! provided:
//!
//! * [`ArrivalProcess::Poisson`] — exponential interarrivals at a fixed
//!   rate, the classic M/G/k client model;
//! * [`ArrivalProcess::Bursty`] — a compound process: bursts of
//!   back-to-back jobs separated by exponential gaps, modelling the
//!   batched traffic spikes a production scheduler actually sees.
//!
//! Determinism contract: the same seed and parameters produce the same
//! stream, bit for bit — arrivals, shapes and sizes. Both executors are
//! asserted against this in `tests/job_streams.rs`.

use das_core::jobs::{JobClass, JobSpec};
use das_core::TaskTypeId;
use das_dag::{generators, Dag};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Interarrival-time process of an open-loop stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalProcess {
    /// Exponential interarrivals: `rate` jobs per second on average.
    Poisson {
        /// Mean arrival rate (jobs/second), > 0.
        rate: f64,
    },
    /// Bursts of `burst` jobs arriving back-to-back (spaced by
    /// `intra_gap` seconds), with exponential gaps between bursts such
    /// that the *long-run* rate is `rate` jobs per second.
    Bursty {
        /// Long-run mean arrival rate (jobs/second), > 0.
        rate: f64,
        /// Jobs per burst, >= 1.
        burst: usize,
        /// Spacing between jobs inside one burst (seconds, >= 0).
        intra_gap: f64,
    },
}

impl ArrivalProcess {
    fn validate(&self) {
        match *self {
            ArrivalProcess::Poisson { rate } => {
                assert!(rate > 0.0 && rate.is_finite(), "need rate > 0");
            }
            ArrivalProcess::Bursty {
                rate,
                burst,
                intra_gap,
            } => {
                assert!(rate > 0.0 && rate.is_finite(), "need rate > 0");
                assert!(burst >= 1, "need burst >= 1");
                assert!(intra_gap >= 0.0 && intra_gap.is_finite(), "bad intra_gap");
            }
        }
    }

    /// Generate the first `n` arrival times (seconds, non-decreasing).
    pub fn arrivals(&self, rng: &mut SmallRng, n: usize) -> Vec<f64> {
        self.validate();
        let mut out = Vec::with_capacity(n);
        match *self {
            ArrivalProcess::Poisson { rate } => {
                let mut t = 0.0;
                for _ in 0..n {
                    t += exponential(rng, rate);
                    out.push(t);
                }
            }
            ArrivalProcess::Bursty {
                rate,
                burst,
                intra_gap,
            } => {
                // Exponential gaps between bursts, sized so the long-run
                // rate still averages `rate` jobs/second: one cycle is
                // gap + (burst-1)*intra_gap long and carries `burst`
                // jobs, so the gap's mean must be the cycle target
                // (burst/rate) minus the burst's own span. Clamped when
                // the intra-gap span alone already exceeds the target
                // (the stream then runs as fast as the spacing allows).
                let span = (burst - 1) as f64 * intra_gap;
                let mean_gap = (burst as f64 / rate - span).max(1e-12);
                let mut t = 0.0;
                while out.len() < n {
                    t += exponential(rng, 1.0 / mean_gap);
                    let mut bt = t;
                    for i in 0..burst {
                        if out.len() >= n {
                            break;
                        }
                        if i > 0 {
                            bt += intra_gap;
                        }
                        out.push(bt);
                    }
                    t = bt.max(t);
                }
            }
        }
        out
    }
}

/// Exponential draw with mean `1/rate` via inverse-CDF over a uniform
/// sample (the vendored `rand` has no distribution types).
fn exponential(rng: &mut SmallRng, rate: f64) -> f64 {
    let u: f64 = rng.gen_range(0.0..1.0);
    // `u` is in [0, 1): `1 - u` is in (0, 1], so `ln` is finite.
    -(1.0 - u).ln() / rate
}

/// What each arriving job computes: a seeded pick from a small family of
/// DAG shapes over one task type.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobShape {
    /// The paper's layered synthetic DAG (`parallelism` × `layers`).
    Layered {
        /// Tasks per layer.
        parallelism: usize,
        /// Number of layers.
        layers: usize,
    },
    /// Fork-join phases.
    ForkJoin {
        /// Forked tasks per phase.
        width: usize,
        /// Number of fork-join phases.
        layers: usize,
    },
    /// A mixed stream: each job independently draws one of the above
    /// (uniformly) with its dimensions jittered ±50 %.
    Mixed {
        /// Baseline tasks-per-layer / fork width.
        parallelism: usize,
        /// Baseline depth.
        layers: usize,
    },
}

impl JobShape {
    fn build(&self, ty: TaskTypeId, rng: &mut SmallRng) -> Dag {
        match *self {
            JobShape::Layered {
                parallelism,
                layers,
            } => generators::layered(ty, parallelism, layers),
            JobShape::ForkJoin { width, layers } => generators::fork_join(ty, width, layers),
            JobShape::Mixed {
                parallelism,
                layers,
            } => {
                let jitter = |rng: &mut SmallRng, base: usize| -> usize {
                    let lo = (base / 2).max(1);
                    let hi = (base + base / 2).max(lo + 1);
                    rng.gen_range(lo..=hi)
                };
                let p = jitter(rng, parallelism);
                let l = jitter(rng, layers);
                if rng.gen_bool(0.5) {
                    generators::layered(ty, p, l)
                } else {
                    generators::fork_join(ty, p, l)
                }
            }
        }
    }
}

/// Configuration of one open-loop job stream.
#[derive(Clone, Copy, Debug)]
pub struct StreamConfig {
    /// RNG seed — same seed, same stream.
    pub seed: u64,
    /// Number of jobs to generate.
    pub jobs: usize,
    /// Interarrival process.
    pub process: ArrivalProcess,
    /// Shape of each job's DAG.
    pub shape: JobShape,
    /// Task type of the generated tasks (selects the PTT and the cost
    /// model row).
    pub ty: TaskTypeId,
    /// Optional relative deadline: each job's deadline is
    /// `arrival + slack` seconds.
    pub slack: Option<f64>,
}

impl StreamConfig {
    /// Poisson stream of `jobs` layered jobs at `rate` jobs/second.
    pub fn poisson(seed: u64, jobs: usize, rate: f64) -> Self {
        StreamConfig {
            seed,
            jobs,
            process: ArrivalProcess::Poisson { rate },
            shape: JobShape::Layered {
                parallelism: 4,
                layers: 8,
            },
            ty: TaskTypeId(0),
            slack: None,
        }
    }

    /// Bursty stream of `jobs` layered jobs at long-run `rate`
    /// jobs/second in bursts of `burst`.
    pub fn bursty(seed: u64, jobs: usize, rate: f64, burst: usize) -> Self {
        StreamConfig {
            process: ArrivalProcess::Bursty {
                rate,
                burst,
                intra_gap: 0.0,
            },
            ..StreamConfig::poisson(seed, jobs, rate)
        }
    }

    /// Set the job shape.
    pub fn shape(mut self, shape: JobShape) -> Self {
        self.shape = shape;
        self
    }

    /// Set the task type.
    pub fn ty(mut self, ty: TaskTypeId) -> Self {
        self.ty = ty;
        self
    }

    /// Give every job `slack` seconds of relative deadline.
    pub fn slack(mut self, slack: f64) -> Self {
        self.slack = Some(slack);
        self
    }

    /// Generate the stream. Jobs are in arrival order; [`JobClass`]
    /// records the burst index under [`ArrivalProcess::Bursty`] (0 for
    /// Poisson).
    pub fn generate(&self) -> Vec<JobSpec<Dag>> {
        assert!(self.jobs > 0, "empty stream");
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let arrivals = self.process.arrivals(&mut rng, self.jobs);
        let burst = match self.process {
            ArrivalProcess::Bursty { burst, .. } => burst,
            ArrivalProcess::Poisson { .. } => 1,
        };
        arrivals
            .into_iter()
            .enumerate()
            .map(|(i, at)| {
                let dag = self.shape.build(self.ty, &mut rng);
                let mut spec = JobSpec::new(dag)
                    .at(at)
                    .class(JobClass((i / burst.max(1)) as u16));
                if let Some(s) = self.slack {
                    spec = spec.deadline(at + s);
                }
                spec
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_deterministic_and_ordered() {
        let a = StreamConfig::poisson(42, 50, 10.0).generate();
        let b = StreamConfig::poisson(42, 50, 10.0).generate();
        assert_eq!(a.len(), 50);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.graph.len(), y.graph.len());
        }
        for w in a.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
            assert!(w[0].arrival > 0.0);
        }
        // Different seed, different stream.
        let c = StreamConfig::poisson(43, 50, 10.0).generate();
        assert!(a.iter().zip(&c).any(|(x, y)| x.arrival != y.arrival));
    }

    #[test]
    fn poisson_rate_is_roughly_right() {
        let jobs = StreamConfig::poisson(7, 2000, 50.0).generate();
        let span = jobs.last().unwrap().arrival;
        let rate = 2000.0 / span;
        assert!((35.0..=70.0).contains(&rate), "empirical rate {rate}");
    }

    #[test]
    fn bursty_groups_jobs() {
        let jobs = StreamConfig::bursty(5, 40, 20.0, 4).generate();
        assert_eq!(jobs.len(), 40);
        // Jobs inside one burst share an arrival (intra_gap 0) and class.
        for chunk in jobs.chunks(4) {
            for j in chunk {
                assert_eq!(j.arrival, chunk[0].arrival);
                assert_eq!(j.class, chunk[0].class);
            }
        }
        assert_ne!(jobs[0].class, jobs[4].class);
        assert!(jobs[4].arrival > jobs[3].arrival);
    }

    #[test]
    fn bursty_long_run_rate_holds_with_intra_gap() {
        // Regression: the inter-burst gap must account for the burst's
        // own intra-gap span, or a nonzero intra_gap silently halves
        // the empirical rate.
        let cfg = StreamConfig {
            process: ArrivalProcess::Bursty {
                rate: 100.0,
                burst: 10,
                intra_gap: 0.005,
            },
            ..StreamConfig::poisson(11, 4000, 100.0)
        };
        let jobs = cfg.generate();
        let span = jobs.last().unwrap().arrival;
        let rate = 4000.0 / span;
        assert!((80.0..=125.0).contains(&rate), "empirical rate {rate}");
    }

    #[test]
    fn shapes_and_deadlines() {
        let jobs = StreamConfig::poisson(9, 12, 5.0)
            .shape(JobShape::Mixed {
                parallelism: 4,
                layers: 6,
            })
            .slack(0.5)
            .generate();
        let mut sizes = std::collections::BTreeSet::new();
        for j in &jobs {
            j.graph.validate().unwrap();
            sizes.insert(j.graph.len());
            let d = j.deadline.unwrap();
            assert!((d - j.arrival - 0.5).abs() < 1e-12);
        }
        assert!(sizes.len() > 1, "mixed stream should vary sizes: {sizes:?}");
    }

    #[test]
    fn fork_join_shape() {
        let jobs = StreamConfig::poisson(3, 2, 1.0)
            .shape(JobShape::ForkJoin {
                width: 3,
                layers: 2,
            })
            .generate();
        for j in &jobs {
            j.graph.validate().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "rate > 0")]
    fn zero_rate_rejected() {
        let _ = StreamConfig::poisson(1, 1, 0.0).generate();
    }
}
