//! The Performance Trace Table (§4.1.1).
//!
//! One table exists per task type. Entry `(core, width)` holds a weighted
//! moving average of the execution times observed by *leader* `core` at
//! resource width `width`. Entries start at zero, which guarantees every
//! execution place is tried at least once: a zero entry makes both the
//! predicted time and the parallel cost zero, so the searches prefer
//! unexplored places. The *local* search explores per `(core, width)`
//! exactly as in the paper; the *global* searches apply a
//! cluster-symmetry prior ([`Ptt::estimate`]) so their forced
//! exploration completes per `(cluster, width)` — see the method docs
//! for why large machines need this.
//!
//! The table is a dense `num_cores × num_widths` array of atomic f64 bit
//! patterns, so concurrent workers can read and update it without locks —
//! the paper stresses that rows are cache-line sized and a core "mainly
//! accesses a single cache line indexed with its own core id".

use das_topology::{CoreId, ExecutionPlace, Topology};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::TaskTypeId;

/// Weight of a new observation in the PTT moving average.
///
/// `updated = ((den - num) * old + num * new) / den`.
///
/// The paper's sensitivity analysis (§5.3, Fig. 8) selects **1:4**, i.e.
/// `num = 1, den = 5`: after a performance change at least three
/// observations are needed before the entry approaches the new value,
/// making the model robust to isolated outliers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WeightRatio {
    /// Weight of the new sample.
    pub num: u32,
    /// Total weight (`den - num` goes to the old value).
    pub den: u32,
}

impl WeightRatio {
    /// The paper's default, 1/5 (written "1:4" in §4.1.1).
    pub const PAPER: WeightRatio = WeightRatio { num: 1, den: 5 };

    /// Create a ratio `num/den`.
    ///
    /// # Panics
    /// Panics unless `0 < num <= den`.
    pub fn new(num: u32, den: u32) -> Self {
        assert!(num > 0 && num <= den, "need 0 < num <= den");
        WeightRatio { num, den }
    }

    /// `1` means "always replace" (no averaging), the rightmost point of
    /// the Fig. 8 sweep.
    pub fn replace() -> Self {
        WeightRatio { num: 1, den: 1 }
    }

    /// Apply the weighted update.
    #[inline]
    pub fn mix(self, old: f64, new: f64) -> f64 {
        (f64::from(self.den - self.num) * old + f64::from(self.num) * new) / f64::from(self.den)
    }

    /// Label used by the Fig. 8 harness (e.g. `"1/5"`).
    pub fn label(self) -> String {
        if self.den == self.num {
            "1".to_string()
        } else {
            format!("{}/{}", self.num, self.den)
        }
    }
}

impl Default for WeightRatio {
    fn default() -> Self {
        WeightRatio::PAPER
    }
}

/// Sentinel for "not a width of this topology" in the width lookup
/// table.
const INVALID_WIDTH: usize = usize::MAX;

/// The Performance Trace Table of a single task type.
///
/// All operations are lock-free; `update` uses a CAS loop so concurrent
/// leaders never lose each other's contribution entirely (one of two
/// racing weighted updates wins, which matches the tolerance of the
/// model — it is a heuristic average, not an accounting ledger).
///
/// Every read on the Algorithm 1 fast path is O(1): the width axis is
/// resolved through a precomputed lookup table instead of a linear
/// scan, and [`Ptt::estimate`]'s cluster-symmetry prior reads a running
/// per-`(cluster, width)` aggregate (sum + count of observed entries,
/// maintained by the write paths) instead of rescanning the cluster.
/// `global_search` is therefore O(places), not O(places × cluster
/// size) — the overhead §5.4 flags as the obstacle to "platforms with
/// large amount of execution places and cores".
pub struct Ptt {
    topo: Arc<Topology>,
    ratio: WeightRatio,
    /// Dense `core * num_widths + width_idx`, f64 bit patterns.
    entries: Box<[AtomicU64]>,
    /// Per-entry observation counters, same indexing as `entries`.
    visits: Box<[AtomicU64]>,
    widths: Vec<usize>,
    /// `width -> position in widths` lookup (`INVALID_WIDTH` for gaps),
    /// so `idx` never scans the width axis.
    width_idx: Vec<usize>,
    /// Running sum of the *current* non-zero entry values per
    /// `(cluster, width_idx)` slot (f64 bit patterns, CAS-added).
    agg_sum: Box<[AtomicU64]>,
    /// Number of non-zero entries per `(cluster, width_idx)` slot.
    /// Entries never return to zero (both write paths reject
    /// non-positive samples), so the count only grows.
    agg_cnt: Box<[AtomicU64]>,
}

/// CAS-add `delta` onto an f64 stored as bits in an atomic. Racing
/// adders each commit exactly their own delta, so the cell stays the
/// sum of all applied deltas.
#[inline]
fn atomic_f64_add(cell: &AtomicU64, delta: f64) {
    // relaxed-ok: self-contained accumulator cell; the CAS loop only
    // needs atomicity of the bit-pattern, no other memory is published.
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let new = (f64::from_bits(cur) + delta).to_bits();
        // relaxed-ok: same cell as above; failure just reloads it.
        match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

impl Ptt {
    /// An all-zero table shaped for `topo`.
    pub fn new(topo: Arc<Topology>, ratio: WeightRatio) -> Self {
        let widths = topo.all_widths().to_vec();
        let mut width_idx = vec![INVALID_WIDTH; widths.last().copied().unwrap_or(0) + 1];
        for (i, &w) in widths.iter().enumerate() {
            width_idx[w] = i;
        }
        let n = topo.num_cores() * widths.len();
        let entries = (0..n).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        let visits = (0..n).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        let slots = topo.num_clusters() * widths.len();
        let agg_sum = (0..slots).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        let agg_cnt = (0..slots).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        Ptt {
            topo,
            ratio,
            entries: entries.into_boxed_slice(),
            visits: visits.into_boxed_slice(),
            widths,
            width_idx,
            agg_sum: agg_sum.into_boxed_slice(),
            agg_cnt: agg_cnt.into_boxed_slice(),
        }
    }

    /// The topology this table is shaped for.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The update ratio in force.
    pub fn ratio(&self) -> WeightRatio {
        self.ratio
    }

    #[inline]
    fn idx(&self, core: CoreId, width: usize) -> Option<usize> {
        let w = *self.width_idx.get(width)?;
        if w == INVALID_WIDTH {
            return None;
        }
        Some(core.0 * self.widths.len() + w)
    }

    /// Index of the `(cluster of `core`, width)` running aggregate.
    /// `width` must already be validated through [`Ptt::idx`].
    #[inline]
    fn agg_idx(&self, core: CoreId, width: usize) -> usize {
        self.topo.cluster_of(core).id.0 * self.widths.len() + self.width_idx[width]
    }

    /// Fold one committed entry transition `old -> new` into the
    /// cluster aggregate. `new` is always positive (the write paths
    /// guard), so an entry leaves zero exactly once.
    #[inline]
    fn record_aggregate(&self, core: CoreId, width: usize, old: f64, new: f64) {
        let i = self.agg_idx(core, width);
        if old == 0.0 {
            // relaxed-ok: advisory sample counter for the cluster
            // fallback average; slight staleness only shades estimates.
            self.agg_cnt[i].fetch_add(1, Ordering::Relaxed);
        }
        atomic_f64_add(&self.agg_sum[i], new - old);
    }

    /// Predicted execution time for leader `core` at `width`; `0.0` means
    /// the place has not been observed yet. `None` if `(core, width)` is
    /// not a valid place on this topology.
    pub fn predict(&self, core: CoreId, width: usize) -> Option<f64> {
        self.topo.place(core, width)?;
        let i = self.idx(core, width)?;
        // relaxed-ok: advisory estimate read; a stale EWMA value only
        // shades a scheduling decision, no invariant depends on it.
        Some(f64::from_bits(self.entries[i].load(Ordering::Relaxed)))
    }

    /// Record an observed execution time (seconds) for a committed task.
    ///
    /// The first observation replaces the zero directly; later
    /// observations apply the weighted average. Non-finite or negative
    /// samples are ignored (defensive: the runtime's clock can glitch).
    pub fn update(&self, place: ExecutionPlace, seconds: f64) {
        if !seconds.is_finite() || seconds <= 0.0 {
            return;
        }
        if self.topo.place(place.leader, place.width).is_none() {
            // An invalid place must not touch a cluster aggregate the
            // valid entries' estimates read.
            return;
        }
        let Some(i) = self.idx(place.leader, place.width) else {
            return;
        };
        let cell = &self.entries[i];
        // relaxed-ok: EWMA update CAS loop on one self-contained cell;
        // only atomicity of the blend matters.
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let old = f64::from_bits(cur);
            let new = if old == 0.0 {
                seconds
            } else {
                self.ratio.mix(old, seconds)
            };
            match cell.compare_exchange_weak(
                cur,
                new.to_bits(),
                Ordering::Relaxed, // relaxed-ok: same advisory cell as the load above
                Ordering::Relaxed, // relaxed-ok: failure just reloads the cell
            ) {
                Ok(_) => {
                    // relaxed-ok: monotone visit counter, read only for
                    // interference detection heuristics and reports.
                    self.visits[i].fetch_add(1, Ordering::Relaxed);
                    self.record_aggregate(place.leader, place.width, old, new);
                    return;
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// How many committed observations entry `(core, width)` has absorbed.
    /// `None` if the place is invalid on this topology.
    ///
    /// This is not part of the paper's PTT (§4.1.1 stores only the
    /// average); it is exposed so harnesses can reason about *training
    /// coverage* — the §5.4 discussion notes that "a simple model like the
    /// PTT may not have enough training data within a single iteration to
    /// detect interference".
    pub fn visits(&self, core: CoreId, width: usize) -> Option<u64> {
        self.topo.place(core, width)?;
        let i = self.idx(core, width)?;
        // relaxed-ok: monotone counter read for heuristics/reports.
        Some(self.visits[i].load(Ordering::Relaxed))
    }

    /// Total observations across all entries.
    pub fn total_visits(&self) -> u64 {
        // relaxed-ok: statistics sum over monotone counters; a torn
        // cross-cell snapshot is acceptable for reporting.
        self.visits.iter().map(|v| v.load(Ordering::Relaxed)).sum()
    }

    /// Number of valid places that have been observed at least once,
    /// together with the total number of valid places. `(explored, total)`
    /// — `explored == total` means the exploration phase guaranteed by
    /// zero-initialisation has completed.
    pub fn coverage(&self) -> (usize, usize) {
        let mut explored = 0;
        let mut total = 0;
        for p in self.topo.places() {
            total += 1;
            if self.visits(p.leader, p.width).unwrap_or(0) > 0 {
                explored += 1;
            }
        }
        (explored, total)
    }

    /// Forcibly set an entry (tests, optimistic-init ablation).
    ///
    /// Applies the same sample guard as [`Ptt::update`]: non-finite,
    /// negative and zero-cost values are rejected. A poisoned seed is
    /// worse than a poisoned observation — it corrupts every subsequent
    /// weighted average built on top of it (and a NaN seed would never
    /// wash out, since `mix(NaN, x)` is NaN forever).
    pub fn seed(&self, core: CoreId, width: usize, seconds: f64) {
        if !seconds.is_finite() || seconds <= 0.0 {
            return;
        }
        if self.topo.place(core, width).is_none() {
            // Seeding an invalid slot was always unobservable (every
            // read validates the place first); now that the cluster
            // aggregates are incremental it would also poison them, so
            // reject it outright.
            return;
        }
        if let Some(i) = self.idx(core, width) {
            // relaxed-ok: seeding an advisory estimate cell; the swap is
            // atomic and nothing else is published under it.
            let old = f64::from_bits(self.entries[i].swap(seconds.to_bits(), Ordering::Relaxed));
            self.record_aggregate(core, width, old, seconds);
        }
    }

    /// **Local search** (Algorithm 1, line 4): keep the core fixed, mold
    /// only the width; return the place minimising predicted *parallel
    /// cost* `time × width`. Zero (unexplored) entries yield cost 0 and
    /// are therefore explored first, smaller widths before larger ones.
    pub fn local_search(&self, core: CoreId) -> ExecutionPlace {
        let cl = self.topo.cluster_of(core);
        let mut best: Option<(f64, ExecutionPlace)> = None;
        for &w in cl.valid_widths() {
            let Some(place) = self.topo.place(core, w) else {
                continue;
            };
            let t = self
                .predict(core, w)
                .expect("place validated against same topology");
            let cost = t * w as f64;
            if best.as_ref().is_none_or(|(b, _)| cost < *b) {
                best = Some((cost, place));
            }
        }
        best.expect("every core has at least the width-1 place").1
    }

    /// Predicted time with a **cluster-symmetry prior** for unexplored
    /// entries: a zero `(core, width)` entry borrows the mean of the
    /// non-zero entries at the same width in the same cluster (cores of
    /// one resource partition are identical hardware, so an observation
    /// on a sibling is the best available estimate). Entries unexplored
    /// across the whole cluster stay at zero, preserving the §4.1.1
    /// explore-first guarantee — but per `(cluster, width)` instead of
    /// per `(core, width)`, which shrinks the forced-exploration phase
    /// from `O(cores × widths)` to `O(clusters × widths)` decisions.
    ///
    /// Without this, a large machine starves: §5.4 observes that "for
    /// the 20 cores of this configuration, there are many resource
    /// partition choices to exhaust", and a task type with few instances
    /// (one ghost exchange per node per iteration) spends the entire run
    /// "exploring" — including places on interfered cores.
    ///
    /// O(1): the borrow reads the running `(cluster, width)` aggregate
    /// maintained by [`Ptt::update`]/[`Ptt::seed`] instead of rescanning
    /// the cluster's entries. See [`Ptt::estimate_rescan`] for the
    /// reference recomputation.
    pub fn estimate(&self, core: CoreId, width: usize) -> Option<f64> {
        let raw = self.predict(core, width)?;
        if raw > 0.0 {
            return Some(raw);
        }
        let i = self.agg_idx(core, width);
        // relaxed-ok: cluster-average fallback; count and sum are
        // advisory and may be mutually stale without harm.
        let n = self.agg_cnt[i].load(Ordering::Relaxed);
        Some(if n > 0 {
            // relaxed-ok: same advisory aggregate as the count above.
            f64::from_bits(self.agg_sum[i].load(Ordering::Relaxed)) / n as f64
        } else {
            0.0
        })
    }

    /// [`Ptt::estimate`] for a place the *caller* has already
    /// validated (e.g. one yielded by `Topology::places`): skips the
    /// place check `predict` repeats, so the search sweeps do one
    /// table load plus at most one aggregate load per candidate.
    #[inline]
    fn estimate_valid(&self, core: CoreId, width: usize) -> f64 {
        let w = self.width_idx[width];
        let raw =
            // relaxed-ok: advisory estimate read on the scheduling fast
            // path; staleness only shades the placement decision.
            f64::from_bits(self.entries[core.0 * self.widths.len() + w].load(Ordering::Relaxed));
        if raw > 0.0 {
            return raw;
        }
        let i = self.topo.cluster_of(core).id.0 * self.widths.len() + w;
        // relaxed-ok: advisory cluster-average fallback (count).
        let n = self.agg_cnt[i].load(Ordering::Relaxed);
        if n > 0 {
            // relaxed-ok: advisory cluster-average fallback (sum).
            f64::from_bits(self.agg_sum[i].load(Ordering::Relaxed)) / n as f64
        } else {
            0.0
        }
    }

    /// Reference implementation of [`Ptt::estimate`]: recompute the
    /// cluster-sibling mean from scratch, O(cluster size) per call.
    ///
    /// This is the pre-aggregate algorithm, kept (a) as the ground truth
    /// the property tests compare the cached aggregates against, and
    /// (b) so the `perf_gate` / criterion harnesses can measure what the
    /// fast path buys. The two differ only by floating-point
    /// association order (the aggregate folds deltas in observation
    /// order, the rescan sums entries in core order), i.e. by at most a
    /// few ULPs.
    pub fn estimate_rescan(&self, core: CoreId, width: usize) -> Option<f64> {
        let raw = self.predict(core, width)?;
        if raw > 0.0 {
            return Some(raw);
        }
        let cl = self.topo.cluster_of(core);
        let mut sum = 0.0;
        let mut n = 0u32;
        for c in cl.cores() {
            if let Some(v) = self.predict(c, width) {
                if v > 0.0 {
                    sum += v;
                    n += 1;
                }
            }
        }
        Some(if n > 0 { sum / f64::from(n) } else { 0.0 })
    }

    /// **Global search** (Algorithm 1, lines 8 and 11): sweep all places,
    /// minimising `time × width` when `minimize_cost` (DAM-C) or raw
    /// `time` otherwise (DAM-P). `width_one_only` restricts the sweep to
    /// solo places (the DA scheduler). `node` restricts the sweep to
    /// clusters of one distributed-memory node.
    pub fn global_search(
        &self,
        minimize_cost: bool,
        width_one_only: bool,
        node: Option<usize>,
    ) -> ExecutionPlace {
        self.global_search_with(minimize_cost, width_one_only, node, |s, c, w| {
            Some(s.estimate_valid(c, w))
        })
    }

    /// [`Ptt::global_search`] over the [`Ptt::estimate_rescan`]
    /// reference path — the pre-aggregate O(places × cluster size)
    /// sweep, kept for the perf harnesses to measure against.
    pub fn global_search_rescan(
        &self,
        minimize_cost: bool,
        width_one_only: bool,
        node: Option<usize>,
    ) -> ExecutionPlace {
        self.global_search_with(minimize_cost, width_one_only, node, Self::estimate_rescan)
    }

    fn global_search_with(
        &self,
        minimize_cost: bool,
        width_one_only: bool,
        node: Option<usize>,
        estimate: impl Fn(&Self, CoreId, usize) -> Option<f64>,
    ) -> ExecutionPlace {
        let mut best: Option<(f64, ExecutionPlace)> = None;
        for place in self.topo.places() {
            if width_one_only && place.width != 1 {
                continue;
            }
            if let Some(n) = node {
                if self.topo.cluster_of(place.leader).node != n {
                    continue;
                }
            }
            let t = estimate(self, place.leader, place.width)
                .expect("iterator yields only valid places");
            let cost = if minimize_cost {
                t * place.width as f64
            } else {
                t
            };
            if best.as_ref().is_none_or(|(b, _)| cost < *b) {
                best = Some((cost, place));
            }
        }
        best.expect("topology has at least one place").1
    }

    /// Scalable **sampled global search** — an answer to the paper's
    /// stated future work ("the design … may result in non negligible
    /// overheads when scaling to platforms with large amount of execution
    /// places and cores. The design and evaluation of scalable performance
    /// prediction models is left for future work").
    ///
    /// Instead of sweeping every `(core, width)` slot, the search
    /// evaluates:
    ///
    /// * **all** places of `probe`'s own cluster (full local knowledge),
    /// * for every *other* cluster, only the places led by the cluster's
    ///   first core (one representative row per cluster).
    ///
    /// Cost drops from `O(cores × widths)` to
    /// `O((clusters + cluster_size) × widths)`. On symmetric clusters the
    /// representative row is an unbiased stand-in; on a perturbed cluster
    /// it can be stale for non-representative leaders, which is the
    /// accuracy trade-off the `ablation_sampled_search` bench quantifies.
    pub fn global_search_sampled(
        &self,
        minimize_cost: bool,
        node: Option<usize>,
        probe: CoreId,
    ) -> ExecutionPlace {
        let home = self.topo.cluster_of(probe).id;
        let mut best: Option<(f64, ExecutionPlace)> = None;
        let mut consider = |place: ExecutionPlace, this: &Self| {
            // Candidate places are valid by construction.
            let t = this.estimate_valid(place.leader, place.width);
            let cost = if minimize_cost {
                t * place.width as f64
            } else {
                t
            };
            if best.as_ref().is_none_or(|(b, _)| cost < *b) {
                best = Some((cost, place));
            }
        };
        for cl in self.topo.clusters() {
            if let Some(n) = node {
                if cl.node != n {
                    continue;
                }
            }
            if cl.id == home {
                for place in self.topo.places_in_cluster(cl.id) {
                    consider(place, self);
                }
            } else {
                for &w in cl.valid_widths() {
                    if let Some(place) = self.topo.place(cl.first_core, w) {
                        consider(place, self);
                    }
                }
            }
        }
        match best {
            Some((_, p)) => p,
            // `probe` was outside the requested node: fall back to the
            // full node-restricted sweep.
            None => self.global_search(minimize_cost, false, node),
        }
    }

    /// Local search restricted to node `node` — falls back to a global
    /// search of the node if `core` itself is outside it.
    pub fn local_search_on_node(&self, core: CoreId, node: usize) -> ExecutionPlace {
        if self.topo.cluster_of(core).node == node {
            self.local_search(core)
        } else {
            self.global_search(true, false, Some(node))
        }
    }

    /// A copy of the current table for analysis / display, shaped
    /// `[core][width_idx]` with `f64::NAN` for invalid places.
    pub fn snapshot(&self) -> PttSnapshot {
        let w = self.widths.len();
        let mut rows = Vec::with_capacity(self.topo.num_cores());
        for c in 0..self.topo.num_cores() {
            let mut row = Vec::with_capacity(w);
            for (wi, &width) in self.widths.iter().enumerate() {
                if self.topo.place(CoreId(c), width).is_some() {
                    row.push(f64::from_bits(
                        // relaxed-ok: report snapshot of advisory cells;
                        // tearing across cells is acceptable.
                        self.entries[c * w + wi].load(Ordering::Relaxed),
                    ));
                } else {
                    row.push(f64::NAN);
                }
            }
            rows.push(row);
        }
        PttSnapshot {
            widths: self.widths.clone(),
            rows,
        }
    }
}

/// Immutable copy of a PTT for reporting (Fig. 2(b) style).
#[derive(Clone, Debug)]
pub struct PttSnapshot {
    /// Width axis (columns).
    pub widths: Vec<usize>,
    /// One row per core; `NAN` marks invalid `(core, width)` combinations.
    pub rows: Vec<Vec<f64>>,
}

impl PttSnapshot {
    /// The predicted time stored for `(core, width)`, or `None` for
    /// invalid/unknown combinations.
    pub fn entry(&self, core: CoreId, width: usize) -> Option<f64> {
        let wi = self.widths.iter().position(|&w| w == width)?;
        let v = *self.rows.get(core.0)?.get(wi)?;
        if v.is_nan() {
            None
        } else {
            Some(v)
        }
    }

    /// Largest absolute difference between two snapshots of the same
    /// shape, over valid entries. Harnesses use this to detect model
    /// convergence (`delta < eps` ⇒ the PTT has settled) and to localise
    /// which entries an interference episode moved.
    ///
    /// # Panics
    /// Panics if the snapshots have different shapes.
    pub fn delta(&self, other: &PttSnapshot) -> f64 {
        assert_eq!(self.widths, other.widths, "snapshot width axes differ");
        assert_eq!(
            self.rows.len(),
            other.rows.len(),
            "snapshot core counts differ"
        );
        let mut max = 0.0f64;
        for (ra, rb) in self.rows.iter().zip(&other.rows) {
            for (a, b) in ra.iter().zip(rb) {
                if a.is_nan() || b.is_nan() {
                    continue;
                }
                max = max.max((a - b).abs());
            }
        }
        max
    }

    /// The `(core, width)` of the smallest positive (i.e. observed) entry,
    /// if any — "which place does the model currently believe is fastest".
    pub fn fastest_entry(&self) -> Option<(CoreId, usize, f64)> {
        let mut best: Option<(CoreId, usize, f64)> = None;
        for (c, row) in self.rows.iter().enumerate() {
            for (wi, &v) in row.iter().enumerate() {
                if v.is_nan() || v <= 0.0 {
                    continue;
                }
                if best.is_none_or(|(_, _, b)| v < b) {
                    best = Some((CoreId(c), self.widths[wi], v));
                }
            }
        }
        best
    }
}

impl std::fmt::Display for PttSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "core ")?;
        for w in &self.widths {
            write!(f, "{:>12}", format!("w={w}"))?;
        }
        writeln!(f)?;
        for (c, row) in self.rows.iter().enumerate() {
            write!(f, "C{c:<4}")?;
            for v in row {
                if v.is_nan() {
                    write!(f, "{:>12}", "-")?;
                } else {
                    write!(f, "{v:>12.3e}")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// All PTTs of an application: one per task type, created on demand
/// (§4.1.1: "one such table is instantiated for each task type").
pub struct PttRegistry {
    topo: Arc<Topology>,
    ratio: WeightRatio,
    tables: RwLock<Vec<Arc<Ptt>>>,
}

impl PttRegistry {
    /// Empty registry for `topo` with update ratio `ratio`.
    pub fn new(topo: Arc<Topology>, ratio: WeightRatio) -> Self {
        PttRegistry {
            topo,
            ratio,
            tables: RwLock::new(Vec::new()),
        }
    }

    /// The PTT of task type `ty`, creating it (and any table for a lower
    /// type id) if needed.
    pub fn table(&self, ty: TaskTypeId) -> Arc<Ptt> {
        let want = ty.0 as usize;
        {
            let tables = self.tables.read().expect("ptt registry poisoned");
            if let Some(t) = tables.get(want) {
                return Arc::clone(t);
            }
        }
        let mut tables = self.tables.write().expect("ptt registry poisoned");
        while tables.len() <= want {
            tables.push(Arc::new(Ptt::new(Arc::clone(&self.topo), self.ratio)));
        }
        Arc::clone(&tables[want])
    }

    /// Number of task types seen so far.
    pub fn len(&self) -> usize {
        self.tables.read().expect("ptt registry poisoned").len()
    }

    /// `true` if no task type has been seen.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Update ratio used for newly created tables.
    pub fn ratio(&self) -> WeightRatio {
        self.ratio
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx2_ptt() -> Ptt {
        Ptt::new(Arc::new(Topology::tx2()), WeightRatio::PAPER)
    }

    #[test]
    fn zero_initialised_and_first_sample_replaces() {
        let ptt = tx2_ptt();
        assert_eq!(ptt.predict(CoreId(0), 1), Some(0.0));
        let p = ptt.topology().place(CoreId(0), 1).unwrap();
        ptt.update(p, 4.0);
        assert_eq!(ptt.predict(CoreId(0), 1), Some(4.0));
    }

    #[test]
    fn weighted_update_matches_paper_formula() {
        let ptt = tx2_ptt();
        let p = ptt.topology().place(CoreId(2), 2).unwrap();
        ptt.update(p, 10.0);
        ptt.update(p, 5.0);
        // (4*10 + 1*5)/5 = 9.0
        assert!((ptt.predict(CoreId(2), 2).unwrap() - 9.0).abs() < 1e-12);
        ptt.update(p, 5.0);
        // (4*9 + 5)/5 = 8.2
        assert!((ptt.predict(CoreId(2), 2).unwrap() - 8.2).abs() < 1e-12);
    }

    #[test]
    fn three_measurements_to_approach_new_value() {
        // §4.1.1: "after a performance variation, at least three
        // measurements need to be taken before the PTT value becomes
        // closer to the new value".
        let ptt = tx2_ptt();
        let p = ptt.topology().place(CoreId(1), 1).unwrap();
        ptt.update(p, 1.0);
        // Performance degrades to 2.0. With the 1:4 ratio the average
        // crosses the midpoint only at the fourth new observation, i.e.
        // "at least three measurements" are insufficient — the PTT is
        // resilient to up to three divergent samples.
        let target = 2.0f64;
        let mut crossed_at = None;
        for i in 1..=10 {
            ptt.update(p, target);
            let v = ptt.predict(CoreId(1), 1).unwrap();
            if (v - target).abs() < (v - 1.0).abs() && crossed_at.is_none() {
                crossed_at = Some(i);
            }
        }
        assert_eq!(crossed_at, Some(4));
        assert!(crossed_at.unwrap() > 3);
    }

    #[test]
    fn invalid_places_rejected() {
        let ptt = tx2_ptt();
        assert_eq!(ptt.predict(CoreId(0), 4), None); // denver max width 2
        assert_eq!(ptt.predict(CoreId(2), 4), Some(0.0));
    }

    #[test]
    fn non_finite_samples_ignored() {
        let ptt = tx2_ptt();
        let p = ptt.topology().place(CoreId(0), 1).unwrap();
        ptt.update(p, f64::NAN);
        ptt.update(p, -1.0);
        ptt.update(p, 0.0);
        assert_eq!(ptt.predict(CoreId(0), 1), Some(0.0));
    }

    #[test]
    fn seed_applies_same_guard_as_update() {
        let ptt = tx2_ptt();
        ptt.seed(CoreId(0), 1, 2.0);
        // Poisoned seeds must not displace the good value; before the
        // guard, a NaN here corrupted every later weighted average.
        ptt.seed(CoreId(0), 1, f64::NAN);
        ptt.seed(CoreId(0), 1, f64::INFINITY);
        ptt.seed(CoreId(0), 1, -3.0);
        ptt.seed(CoreId(0), 1, 0.0);
        assert_eq!(ptt.predict(CoreId(0), 1), Some(2.0));
        let p = ptt.topology().place(CoreId(0), 1).unwrap();
        ptt.update(p, 1.0);
        assert!(ptt.predict(CoreId(0), 1).unwrap().is_finite());
    }

    #[test]
    fn local_search_explores_then_minimises_cost() {
        let ptt = tx2_ptt();
        // All zero: smallest width explored first.
        assert_eq!(ptt.local_search(CoreId(2)).width, 1);
        ptt.seed(CoreId(2), 1, 8.0);
        // w=2 still zero -> explored next.
        assert_eq!(ptt.local_search(CoreId(2)).width, 2);
        ptt.seed(CoreId(2), 2, 3.0);
        assert_eq!(ptt.local_search(CoreId(2)).width, 4);
        ptt.seed(CoreId(2), 4, 2.5);
        // Costs: 8*1=8, 3*2=6, 2.5*4=10 -> width 2 wins.
        assert_eq!(ptt.local_search(CoreId(2)).width, 2);
    }

    #[test]
    fn global_search_cost_vs_perf() {
        let ptt = tx2_ptt();
        for p in ptt.topology().places() {
            // Make everything explored and mediocre.
            ptt.seed(p.leader, p.width, 10.0);
        }
        // Fast wide place: low time, high cost.
        ptt.seed(CoreId(2), 4, 1.0); // cost 4.0
        ptt.seed(CoreId(1), 1, 2.0); // cost 2.0
        let cost = ptt.global_search(true, false, None);
        assert_eq!((cost.leader, cost.width), (CoreId(1), 1));
        let perf = ptt.global_search(false, false, None);
        assert_eq!((perf.leader, perf.width), (CoreId(2), 4));
    }

    #[test]
    fn global_search_width_one_only_is_da() {
        let ptt = tx2_ptt();
        for p in ptt.topology().places() {
            ptt.seed(p.leader, p.width, 10.0);
        }
        ptt.seed(CoreId(2), 4, 0.5);
        ptt.seed(CoreId(3), 1, 2.0);
        let p = ptt.global_search(false, true, None);
        assert_eq!((p.leader, p.width), (CoreId(3), 1));
    }

    #[test]
    fn node_restriction() {
        let topo = Arc::new(Topology::haswell_cluster(2));
        let ptt = Ptt::new(Arc::clone(&topo), WeightRatio::PAPER);
        for p in topo.places() {
            ptt.seed(p.leader, p.width, 10.0);
        }
        // Best overall on node 0, best on node 1 elsewhere. Node 1 spans
        // cores 20..40 on the 2-node (2×2×10-core) cluster.
        ptt.seed(CoreId(0), 1, 0.1);
        ptt.seed(CoreId(25), 1, 1.0);
        let p = ptt.global_search(false, false, Some(1));
        assert_eq!(topo.cluster_of(p.leader).node, 1);
        assert_eq!((p.leader, p.width), (CoreId(25), 1));
        // Local search on a core of the wrong node redirects into the node.
        let p = ptt.local_search_on_node(CoreId(0), 1);
        assert_eq!(topo.cluster_of(p.leader).node, 1);
    }

    #[test]
    fn registry_creates_one_table_per_type() {
        let reg = PttRegistry::new(Arc::new(Topology::tx2()), WeightRatio::PAPER);
        assert!(reg.is_empty());
        let a = reg.table(TaskTypeId(2));
        let b = reg.table(TaskTypeId(2));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(reg.len(), 3);
        let c = reg.table(TaskTypeId(0));
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn concurrent_updates_do_not_corrupt() {
        let ptt = Arc::new(tx2_ptt());
        let p = ptt.topology().place(CoreId(0), 1).unwrap();
        let mut handles = Vec::new();
        for t in 0..4 {
            let ptt = Arc::clone(&ptt);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    ptt.update(p, 1.0 + ((t * i) % 7) as f64);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let v = ptt.predict(CoreId(0), 1).unwrap();
        assert!(v.is_finite() && (1.0..=8.0).contains(&v), "v={v}");
    }

    #[test]
    fn estimate_borrows_from_cluster_siblings() {
        let ptt = tx2_ptt();
        // Nothing observed anywhere: estimate stays 0 (explore).
        assert_eq!(ptt.estimate(CoreId(3), 1), Some(0.0));
        // Observe (C2,1) and (C4,1): the unexplored (C3,1) borrows their
        // mean; the explored entries return their raw values.
        ptt.seed(CoreId(2), 1, 2.0);
        ptt.seed(CoreId(4), 1, 4.0);
        assert_eq!(ptt.estimate(CoreId(3), 1), Some(3.0));
        assert_eq!(ptt.estimate(CoreId(2), 1), Some(2.0));
        // Other widths and other clusters are not consulted.
        assert_eq!(ptt.estimate(CoreId(3), 2), Some(0.0));
        assert_eq!(ptt.estimate(CoreId(0), 1), Some(0.0));
        // Invalid place.
        assert_eq!(ptt.estimate(CoreId(0), 4), None);
    }

    #[test]
    fn global_search_exploration_is_per_cluster_width() {
        // With the symmetry prior, once one (a57, w=1) row is observed,
        // the global search stops treating the other a57 w=1 rows as
        // free exploration targets.
        let ptt = tx2_ptt();
        // Observe every denver place and one a57 row fully.
        for w in [1usize, 2] {
            ptt.seed(CoreId(0), w, 5.0);
            ptt.seed(CoreId(1), w, 5.0);
        }
        for w in [1usize, 2, 4] {
            ptt.seed(CoreId(2), w, 1.0);
        }
        // Remaining zeros: a57 rows 3..=5 — all estimable from core 2's
        // observations, so the search must pick the genuinely best
        // (estimated) place rather than the first zero entry.
        let p = ptt.global_search(false, false, None);
        assert_eq!(topo_cluster(&ptt, p), ClusterIdHelper::A57);
        let t = ptt.estimate(p.leader, p.width).unwrap();
        assert!(t > 0.0, "no cost-0 exploration left on this topology");
    }

    #[derive(PartialEq, Debug)]
    enum ClusterIdHelper {
        Denver,
        A57,
    }

    fn topo_cluster(ptt: &Ptt, p: ExecutionPlace) -> ClusterIdHelper {
        if ptt.topology().cluster_of(p.leader).name == "denver" {
            ClusterIdHelper::Denver
        } else {
            ClusterIdHelper::A57
        }
    }

    #[test]
    fn visits_count_only_committed_updates() {
        let ptt = tx2_ptt();
        let p = ptt.topology().place(CoreId(0), 1).unwrap();
        assert_eq!(ptt.visits(CoreId(0), 1), Some(0));
        ptt.update(p, 1.0);
        ptt.update(p, 2.0);
        ptt.update(p, f64::NAN); // rejected, must not count
        assert_eq!(ptt.visits(CoreId(0), 1), Some(2));
        assert_eq!(ptt.visits(CoreId(0), 4), None); // invalid place
        assert_eq!(ptt.total_visits(), 2);
    }

    #[test]
    fn coverage_tracks_exploration() {
        let ptt = tx2_ptt();
        let (explored, total) = ptt.coverage();
        assert_eq!((explored, total), (0, 16));
        for p in ptt.topology().places() {
            ptt.update(p, 1.0);
        }
        assert_eq!(ptt.coverage(), (16, 16));
    }

    #[test]
    fn sampled_search_sees_own_cluster_fully() {
        let ptt = tx2_ptt();
        for p in ptt.topology().places() {
            ptt.seed(p.leader, p.width, 10.0);
        }
        // Best place led by a NON-representative core of the probe's own
        // cluster: full visibility inside the home cluster must find it.
        ptt.seed(CoreId(3), 1, 0.5);
        let p = ptt.global_search_sampled(false, None, CoreId(2));
        assert_eq!((p.leader, p.width), (CoreId(3), 1));
    }

    #[test]
    fn sampled_search_sees_other_clusters_via_representative() {
        let ptt = tx2_ptt();
        for p in ptt.topology().places() {
            ptt.seed(p.leader, p.width, 10.0);
        }
        // Fast entry on the representative (first) core of the Denver
        // cluster, probed from the A57 cluster.
        ptt.seed(CoreId(0), 1, 0.25);
        let p = ptt.global_search_sampled(false, None, CoreId(4));
        assert_eq!((p.leader, p.width), (CoreId(0), 1));
        // A fast entry hidden on a non-representative remote core is the
        // accuracy trade-off: the sampled search cannot see it.
        let ptt2 = tx2_ptt();
        for p in ptt2.topology().places() {
            ptt2.seed(p.leader, p.width, 10.0);
        }
        ptt2.seed(CoreId(1), 1, 0.25); // denver core 1, not representative
        let p = ptt2.global_search_sampled(false, None, CoreId(4));
        assert_ne!((p.leader, p.width), (CoreId(1), 1));
    }

    #[test]
    fn sampled_search_respects_node_and_falls_back() {
        let topo = Arc::new(Topology::haswell_cluster(2));
        let ptt = Ptt::new(Arc::clone(&topo), WeightRatio::PAPER);
        for p in topo.places() {
            ptt.seed(p.leader, p.width, 5.0);
        }
        ptt.seed(CoreId(20), 1, 0.5); // first core of node 1
                                      // Probe on node 0, restricted to node 1: falls through to
                                      // node-restricted scan and still lands on node 1.
        let p = ptt.global_search_sampled(false, Some(1), CoreId(0));
        assert_eq!(topo.cluster_of(p.leader).node, 1);
    }

    #[test]
    fn snapshot_entry_and_delta() {
        let ptt = tx2_ptt();
        ptt.seed(CoreId(0), 1, 2.0);
        let a = ptt.snapshot();
        assert_eq!(a.entry(CoreId(0), 1), Some(2.0));
        assert_eq!(a.entry(CoreId(0), 4), None); // invalid on denver
        ptt.seed(CoreId(2), 2, 7.0);
        let b = ptt.snapshot();
        assert!((a.delta(&b) - 7.0).abs() < 1e-12);
        assert_eq!(a.delta(&a), 0.0);
        assert_eq!(b.fastest_entry(), Some((CoreId(0), 1, 2.0)));
    }

    #[test]
    #[should_panic(expected = "snapshot")]
    fn snapshot_delta_shape_mismatch_panics() {
        let a = tx2_ptt().snapshot();
        let b = Ptt::new(Arc::new(Topology::symmetric(4)), WeightRatio::PAPER).snapshot();
        let _ = a.delta(&b);
    }

    #[test]
    fn cached_estimate_matches_rescan_reference() {
        // Interleave seeds and updates across two clusters; the O(1)
        // aggregate must track the from-scratch recomputation on every
        // slot (valid widths and unexplored entries alike).
        let ptt = tx2_ptt();
        let topo = Arc::new(Topology::tx2());
        let steps: &[(usize, usize, f64)] = &[
            (2, 1, 3.0),
            (4, 1, 5.0),
            (2, 1, 1.0),
            (0, 2, 2.0),
            (3, 4, 7.0),
            (1, 1, 0.5),
            (2, 2, 9.0),
        ];
        for (k, &(core, width, v)) in steps.iter().enumerate() {
            if k % 2 == 0 {
                ptt.seed(CoreId(core), width, v);
            } else if let Some(p) = topo.place(CoreId(core), width) {
                ptt.update(p, v);
            }
            for c in topo.cores() {
                for &w in topo.all_widths() {
                    assert_eq!(
                        ptt.estimate(c, w),
                        ptt.estimate_rescan(c, w),
                        "({c}, w={w}) after step {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn seed_of_invalid_slot_is_rejected_and_does_not_pollute_aggregates() {
        // On a 10-core cluster width 8 is valid for cores 0..8 but the
        // aligned block of cores 8..10 does not fit: seeding there must
        // be a no-op, or the (cluster, w=8) aggregate every valid core
        // borrows from would include a phantom entry.
        let topo = Arc::new(Topology::haswell_2x10());
        let ptt = Ptt::new(Arc::clone(&topo), WeightRatio::PAPER);
        assert!(topo.place(CoreId(8), 8).is_none());
        ptt.seed(CoreId(8), 8, 5.0);
        assert_eq!(ptt.estimate(CoreId(0), 8), Some(0.0));
        ptt.seed(CoreId(0), 8, 2.0);
        assert_eq!(ptt.estimate(CoreId(1), 8), Some(2.0));
        assert_eq!(
            ptt.estimate(CoreId(1), 8),
            ptt.estimate_rescan(CoreId(1), 8)
        );
    }

    #[test]
    fn global_search_rescan_agrees_with_fast_path() {
        let ptt = tx2_ptt();
        ptt.seed(CoreId(2), 1, 2.0);
        ptt.seed(CoreId(0), 1, 4.0);
        for minimize_cost in [false, true] {
            for width_one in [false, true] {
                let a = ptt.global_search(minimize_cost, width_one, None);
                let b = ptt.global_search_rescan(minimize_cost, width_one, None);
                assert_eq!((a.leader, a.width), (b.leader, b.width));
            }
        }
    }

    #[test]
    fn concurrent_updates_keep_aggregates_consistent() {
        // Hammer one cluster from several threads, then check the
        // cached borrow stays a sane mean of the final entries (exact
        // equality is not promised under races — the aggregate is a
        // heuristic — but it must stay within the entries' hull).
        let ptt = Arc::new(tx2_ptt());
        let mut handles = Vec::new();
        for t in 0..4usize {
            let ptt = Arc::clone(&ptt);
            handles.push(std::thread::spawn(move || {
                let core = CoreId(2 + t); // all four a57 cores at w=1
                let p = ptt.topology().place(core, 1).unwrap();
                for i in 0..1000 {
                    ptt.update(p, 1.0 + ((t + i) % 5) as f64);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // All a57 w=1 entries trained; a fresh w=2 query borrows. The
        // single-threaded rescan is exact now that writers are done.
        let cached = ptt.estimate(CoreId(2), 1).unwrap();
        assert!(cached > 0.0);
        let borrow = ptt.estimate_rescan(CoreId(3), 2).unwrap();
        assert_eq!(borrow, 0.0, "w=2 never observed");
        let mean_cached = {
            // Force the borrow path by querying through a snapshot of
            // an untouched sibling width... w=4 also unexplored.
            ptt.estimate(CoreId(3), 4).unwrap()
        };
        assert_eq!(mean_cached, 0.0);
    }

    #[test]
    fn snapshot_display() {
        let ptt = tx2_ptt();
        ptt.seed(CoreId(0), 1, 1.5);
        let s = ptt.snapshot();
        assert_eq!(s.rows.len(), 6);
        assert_eq!(s.rows[0][0], 1.5);
        assert!(s.rows[0][2].is_nan()); // (C0, w=4) invalid
        let text = s.to_string();
        assert!(text.contains("w=4"));
    }
}
