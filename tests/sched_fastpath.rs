//! The O(1) scheduling fast paths must be *refactorings*, not
//! behaviour changes:
//!
//! * the aggregate-cached [`Ptt::estimate`] must equal the from-scratch
//!   cluster rescan it replaced (property test over arbitrary
//!   interleaved `update`/`seed` sequences);
//! * the sim engine's idle-set wake-ups (plus the stealable-entry count
//!   and assembly recycling that ride along) must produce bit-identical
//!   traces and stats to the old every-core broadcast, which is kept
//!   behind [`Simulator::set_broadcast_wakeups`] exactly for this test.

use das::core::{Policy, Ptt, TaskTypeId, WeightRatio};
use das::dag::generators;
use das::sim::{cost::UniformCost, Environment, Modifier, SimConfig, Simulator};
use das::topology::{CoreId, Topology};
use das::workloads::arrivals::{JobShape, StreamConfig};
use proptest::prelude::*;
use std::sync::Arc;

// ---------------------------------------------------------------------
// PTT aggregate cache vs from-scratch recomputation
// ---------------------------------------------------------------------

fn arb_topology() -> impl Strategy<Value = Topology> {
    prop_oneof![
        Just(Topology::tx2()),
        Just(Topology::haswell_2x8()),
        Just(Topology::haswell_2x10()),
        Just(Topology::symmetric(5)),
        (1usize..4, 1usize..6).prop_map(|(b, l)| Topology::big_little(b, l, 2.0)),
    ]
}

/// One write against the table: seed or update, on any core and any
/// width of the global axis (including widths invalid for the core's
/// cluster — both paths must reject those identically), with values
/// spanning the guard cases (non-finite, non-positive) too.
fn arb_writes() -> impl Strategy<Value = Vec<(bool, usize, usize, f64)>> {
    prop::collection::vec(
        (
            any::<bool>(),
            0usize..64,
            0usize..6,
            prop_oneof![
                1e-6f64..1e3,
                Just(0.0),
                Just(-1.0),
                Just(f64::NAN),
                Just(f64::INFINITY),
            ],
        ),
        1..40,
    )
}

/// `a` and `b` differ only by floating-point association order (the
/// cache folds deltas in observation order, the rescan sums entries in
/// core order). Under cancellation the drift is bounded by ULPs of the
/// *largest intermediate* — e.g. a 1e3 seed overwritten by 1e-6 leaves
/// the delta-folded sum at `fl(1e3 + fl(1e-6 - 1e3))`, off the exact
/// 1e-6 by ~1e-13 absolute — so the tolerance must scale with the
/// largest value ever written (`scale`), not with the results alone.
fn approx_eq(a: f64, b: f64, scale: f64) -> bool {
    a == b || (a - b).abs() <= 1e-12 * a.abs().max(b.abs()).max(scale)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cached_estimate_equals_from_scratch_recomputation(
        topo in arb_topology(),
        writes in arb_writes(),
    ) {
        let topo = Arc::new(topo);
        let ptt = Ptt::new(Arc::clone(&topo), WeightRatio::PAPER);
        let widths = topo.all_widths().to_vec();
        let mut max_written = 1.0f64;
        for &(is_seed, core, width_pick, value) in &writes {
            let core = CoreId(core % topo.num_cores());
            let width = widths[width_pick % widths.len()];
            if value.is_finite() && value > 0.0 {
                max_written = max_written.max(value);
            }
            if is_seed {
                ptt.seed(core, width, value);
            } else if let Some(place) = topo.place(core, width) {
                ptt.update(place, value);
            }
        }
        // Every slot of the table agrees with the reference, valid and
        // unexplored alike.
        for c in topo.cores() {
            for &w in topo.all_widths() {
                let cached = ptt.estimate(c, w);
                let rescan = ptt.estimate_rescan(c, w);
                match (cached, rescan) {
                    (None, None) => {}
                    (Some(a), Some(b)) => prop_assert!(
                        approx_eq(a, b, max_written),
                        "({c}, w={w}): cached {a} vs rescan {b}"
                    ),
                    _ => prop_assert!(false, "({c}, w={w}): validity differs"),
                }
            }
        }
        // And the search decisions built on it agree exactly.
        for minimize_cost in [false, true] {
            let a = ptt.global_search(minimize_cost, false, None);
            let b = ptt.global_search_rescan(minimize_cost, false, None);
            prop_assert_eq!((a.leader, a.width), (b.leader, b.width));
        }
    }
}

// ---------------------------------------------------------------------
// Idle-set wake-ups vs the every-core broadcast
// ---------------------------------------------------------------------

fn stream_sim(policy: Policy, topo: &Arc<Topology>, broadcast: bool, env: bool) -> Simulator {
    let mut sim = Simulator::new(
        SimConfig::new(Arc::clone(topo), policy)
            .seed(0xda5_2026)
            .cost(Arc::new(UniformCost::new(1e-3))),
    );
    sim.set_broadcast_wakeups(broadcast);
    if env {
        sim.set_env(
            Environment::interference_free(Arc::clone(topo))
                .and(Modifier::compute_corunner(CoreId(0))),
        );
    }
    sim
}

#[test]
fn idle_set_wakeups_match_broadcast_on_multi_job_streams() {
    // Every policy, with and without interference: the idle-set engine
    // must retire the same jobs with the same stats as the broadcast
    // reference, bit for bit (StreamStats is all-f64 PartialEq).
    let topo = Arc::new(Topology::tx2());
    let jobs = StreamConfig::poisson(17, 24, 300.0)
        .shape(JobShape::Mixed {
            parallelism: 4,
            layers: 5,
        })
        .generate();
    for policy in Policy::ALL {
        for env in [false, true] {
            // Both engines go through the incremental session path
            // (submit + drain) — the façade's machinery.
            let drain = |mut sim: Simulator, label: &str| {
                for spec in &jobs {
                    sim.submit(spec.clone())
                        .unwrap_or_else(|e| panic!("{policy} {label}: {e}"));
                }
                sim.drain()
                    .unwrap_or_else(|e| panic!("{policy} {label}: {e}"))
            };
            let a = drain(stream_sim(policy, &topo, false, env), "idle-set");
            let b = drain(stream_sim(policy, &topo, true, env), "broadcast");
            assert_eq!(a, b, "{policy} env={env}");
        }
    }
}

#[test]
fn idle_set_wakeups_match_broadcast_traces_and_run_stats() {
    // Single-DAG runs with tracing on: identical spans (core, start,
    // end, task, place of every execution) prove the event streams are
    // interchangeable, not just the aggregates.
    let topo = Arc::new(Topology::tx2());
    let dag = generators::layered(TaskTypeId(0), 4, 120);
    for policy in Policy::ALL {
        let mut a = stream_sim(policy, &topo, false, false);
        let mut b = stream_sim(policy, &topo, true, false);
        a.record_trace(true);
        b.record_trace(true);
        let ra = a.run(&dag).unwrap();
        let rb = b.run(&dag).unwrap();
        assert_eq!(ra, rb, "{policy} RunStats diverged");
        let (ta, tb) = (a.take_trace(), b.take_trace());
        assert_eq!(ta.spans, tb.spans, "{policy} traces diverged");
        assert_eq!(ta.makespan, tb.makespan, "{policy}");
    }
}

#[test]
fn idle_set_wakeups_match_broadcast_on_wavefronts_across_seeds() {
    // Wavefronts give the steal RNG real choices (many concurrent
    // victims), so any perturbation of the Poll-event order would show
    // up in the victim sequence. Sweep seeds to make that likely.
    let topo = Arc::new(Topology::tx2());
    let dag = generators::wavefront(TaskTypeId(0), 18);
    for seed in [1u64, 7, 42, 99, 1234] {
        let mk = |broadcast: bool| {
            let mut sim = Simulator::new(
                SimConfig::new(Arc::clone(&topo), Policy::DamC)
                    .seed(seed)
                    .cost(Arc::new(UniformCost::new(1e-3))),
            );
            sim.set_broadcast_wakeups(broadcast);
            sim.run(&dag).unwrap()
        };
        assert_eq!(mk(false), mk(true), "seed {seed}");
    }
}
