//! K-means clustering (§4.2.2, Fig. 9) — "a representative of the
//! data-parallel class of applications".
//!
//! Shapes, as in the paper's XiTAO port of the Rodinia benchmark:
//! each iteration maps the loop partitions to dynamically scheduled
//! tasks; the task containing the *largest work unit* (chunk 0, which is
//! twice the size of the others here) carries the high priority.
//!
//! Three forms share the algorithm:
//! * [`KMeans::run_sequential`] — reference implementation;
//! * [`KMeans::run_on_runtime`] — executes each iteration as a
//!   [`TaskGraph`] on `das-runtime` (moldable chunk tasks);
//! * [`iteration_dag`] — the same iteration shape for `das-sim`, used by
//!   the Fig. 9 harness.

use crate::types;
use das_core::Priority;
use das_dag::{generators, Dag};
use das_runtime::{JobSpec, Runtime, TaskGraph};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Per-chunk accumulator shared between assignment tasks: centroid
/// coordinate sums and per-centroid counts.
type PartialSums = Arc<Vec<Mutex<(Vec<f64>, Vec<usize>)>>>;

/// A K-means problem instance: `n` points of dimension `dim`, flattened
/// row-major.
#[derive(Clone, Debug)]
pub struct KMeans {
    data: Arc<Vec<f64>>,
    dim: usize,
    k: usize,
}

impl KMeans {
    /// Wrap an existing data set.
    ///
    /// # Panics
    /// Panics if the data length is not a multiple of `dim`, or `k == 0`.
    pub fn new(data: Vec<f64>, dim: usize, k: usize) -> Self {
        assert!(dim > 0 && k > 0);
        assert_eq!(data.len() % dim, 0, "data must be n×dim");
        assert!(data.len() / dim >= k, "need at least k points");
        KMeans {
            data: Arc::new(data),
            dim,
            k,
        }
    }

    /// Generate `n` points around `k` Gaussian-ish blobs (deterministic
    /// in `seed`).
    pub fn generate(n: usize, dim: usize, k: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let centers: Vec<f64> = (0..k * dim).map(|_| rng.gen_range(-10.0..10.0)).collect();
        let mut data = Vec::with_capacity(n * dim);
        for i in 0..n {
            let c = i % k;
            for d in 0..dim {
                let noise: f64 = rng.gen_range(-0.5..0.5);
                data.push(centers[c * dim + d] + noise);
            }
        }
        KMeans::new(data, dim, k)
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// `true` if the instance has no points.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Initial centroids: the first `k` points (the classic Forgy-like
    /// deterministic start used by Rodinia).
    pub fn initial_centroids(&self) -> Vec<f64> {
        self.data[..self.k * self.dim].to_vec()
    }

    fn nearest(&self, point: &[f64], centroids: &[f64]) -> usize {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for c in 0..self.k {
            let mut d = 0.0;
            for j in 0..self.dim {
                let diff = point[j] - centroids[c * self.dim + j];
                d += diff * diff;
            }
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        best
    }

    /// Accumulate the assignment sums of points `[lo, hi)` with stride
    /// `step`, starting at `lo + offset`. Returns `(sums, counts)`.
    fn partial(
        &self,
        centroids: &[f64],
        lo: usize,
        hi: usize,
        offset: usize,
        step: usize,
    ) -> (Vec<f64>, Vec<usize>) {
        let mut sums = vec![0.0; self.k * self.dim];
        let mut counts = vec![0usize; self.k];
        let mut i = lo + offset;
        while i < hi {
            let p = &self.data[i * self.dim..(i + 1) * self.dim];
            let c = self.nearest(p, centroids);
            counts[c] += 1;
            for j in 0..self.dim {
                sums[c * self.dim + j] += p[j];
            }
            i += step;
        }
        (sums, counts)
    }

    fn finish_centroids(&self, sums: &[f64], counts: &[usize], old: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.k * self.dim];
        for c in 0..self.k {
            if counts[c] == 0 {
                // Empty cluster keeps its old centroid (Rodinia behaviour).
                out[c * self.dim..(c + 1) * self.dim]
                    .copy_from_slice(&old[c * self.dim..(c + 1) * self.dim]);
            } else {
                for j in 0..self.dim {
                    out[c * self.dim + j] = sums[c * self.dim + j] / counts[c] as f64;
                }
            }
        }
        out
    }

    /// One sequential Lloyd iteration.
    pub fn sequential_iteration(&self, centroids: &[f64]) -> Vec<f64> {
        let (sums, counts) = self.partial(centroids, 0, self.len(), 0, 1);
        self.finish_centroids(&sums, &counts, centroids)
    }

    /// Run `iters` sequential iterations from the default start.
    pub fn run_sequential(&self, iters: usize) -> Vec<f64> {
        let mut c = self.initial_centroids();
        for _ in 0..iters {
            c = self.sequential_iteration(&c);
        }
        c
    }

    /// Chunk boundaries: chunk 0 is twice as large as the rest (it gets
    /// the high priority as "the task containing the largest work unit").
    fn chunk_bounds(&self, chunks: usize) -> Vec<(usize, usize)> {
        let n = self.len();
        let unit = n / (chunks + 1).max(1);
        let mut out = Vec::with_capacity(chunks);
        let mut lo = 0;
        for c in 0..chunks {
            let sz = if c == 0 { 2 * unit } else { unit };
            let hi = if c == chunks - 1 { n } else { (lo + sz).min(n) };
            out.push((lo, hi));
            lo = hi;
        }
        out
    }

    /// Run `iters` iterations on a `das-runtime`, each iteration a fresh
    /// task graph of `chunks` moldable chunk tasks plus a reduction, the
    /// shape the Fig. 9 experiment schedules. Returns the final
    /// centroids and the per-iteration wall-clock seconds.
    pub fn run_on_runtime(
        &self,
        rt: &Runtime,
        iters: usize,
        chunks: usize,
    ) -> (Vec<f64>, Vec<f64>) {
        assert!(chunks >= 1);
        let mut centroids = self.initial_centroids();
        let mut times = Vec::with_capacity(iters);
        for iter in 0..iters {
            // Per-iteration wall time is this method's return value.
            #[allow(clippy::disallowed_methods)]
            let t0 = std::time::Instant::now();
            centroids = self.runtime_iteration(rt, &centroids, chunks, iter as u64);
            times.push(t0.elapsed().as_secs_f64());
        }
        (centroids, times)
    }

    fn runtime_iteration(
        &self,
        rt: &Runtime,
        centroids: &[f64],
        chunks: usize,
        iter: u64,
    ) -> Vec<f64> {
        let bounds = self.chunk_bounds(chunks);
        let cents = Arc::new(centroids.to_vec());
        let partials: PartialSums = Arc::new(
            (0..chunks)
                .map(|_| Mutex::new((vec![0.0; self.k * self.dim], vec![0usize; self.k])))
                .collect(),
        );
        let result = Arc::new(Mutex::new(Vec::new()));

        let mut g = TaskGraph::new(format!("kmeans-it{iter}"));
        let mut chunk_ids = Vec::with_capacity(chunks);
        for (ci, &(lo, hi)) in bounds.iter().enumerate() {
            let prio = if ci == 0 {
                Priority::High
            } else {
                Priority::Low
            };
            let me = self.clone();
            let cents = Arc::clone(&cents);
            let partials = Arc::clone(&partials);
            let id = g.add(types::KMEANS_CHUNK, prio, move |ctx| {
                // Moldable: each rank handles a cyclic share of the chunk.
                let (sums, counts) = me.partial(&cents, lo, hi, ctx.rank, ctx.width);
                let mut slot = partials[ci].lock();
                for (a, b) in slot.0.iter_mut().zip(&sums) {
                    *a += b;
                }
                for (a, b) in slot.1.iter_mut().zip(&counts) {
                    *a += b;
                }
            });
            chunk_ids.push(id);
        }
        let me = self.clone();
        let cents = Arc::clone(&cents);
        let partials_r = Arc::clone(&partials);
        let result_w = Arc::clone(&result);
        let k = self.k;
        let dim = self.dim;
        let reduce = g.add(types::KMEANS_REDUCE, Priority::Low, move |ctx| {
            if ctx.rank != 0 {
                return; // reduction is inherently serial
            }
            let mut sums = vec![0.0; k * dim];
            let mut counts = vec![0usize; k];
            for p in partials_r.iter() {
                let slot = p.lock();
                for (a, b) in sums.iter_mut().zip(&slot.0) {
                    *a += b;
                }
                for (a, b) in counts.iter_mut().zip(&slot.1) {
                    *a += b;
                }
            }
            *result_w.lock() = me.finish_centroids(&sums, &counts, &cents);
        });
        for id in chunk_ids {
            g.add_edge(id, reduce);
        }
        rt.submit(JobSpec::new(g))
            .expect("kmeans iteration graph is valid")
            .wait();
        let out = result.lock().clone();
        assert_eq!(out.len(), self.k * self.dim);
        out
    }

    /// Task-parallel partial sums over this instance's points — the
    /// per-rank half of the distributed algorithm (no reduction task; the
    /// caller combines).
    fn parallel_partials(
        &self,
        rt: &Runtime,
        centroids: &[f64],
        chunks: usize,
        iter: u64,
    ) -> (Vec<f64>, Vec<usize>) {
        let bounds = self.chunk_bounds(chunks.max(1));
        let cents = Arc::new(centroids.to_vec());
        let partials: PartialSums = Arc::new(
            bounds
                .iter()
                .map(|_| Mutex::new((vec![0.0; self.k * self.dim], vec![0usize; self.k])))
                .collect(),
        );
        let mut g = TaskGraph::new(format!("kmeans-partials-it{iter}"));
        for (ci, &(lo, hi)) in bounds.iter().enumerate() {
            let prio = if ci == 0 {
                Priority::High
            } else {
                Priority::Low
            };
            let me = self.clone();
            let cents = Arc::clone(&cents);
            let partials = Arc::clone(&partials);
            g.add(types::KMEANS_CHUNK, prio, move |ctx| {
                let (sums, counts) = me.partial(&cents, lo, hi, ctx.rank, ctx.width);
                let mut slot = partials[ci].lock();
                for (a, b) in slot.0.iter_mut().zip(&sums) {
                    *a += b;
                }
                for (a, b) in slot.1.iter_mut().zip(&counts) {
                    *a += b;
                }
            });
        }
        rt.submit(JobSpec::new(g))
            .expect("kmeans partials graph is valid")
            .wait();
        let mut sums = vec![0.0; self.k * self.dim];
        let mut counts = vec![0usize; self.k];
        for p in partials.iter() {
            let slot = p.lock();
            for (a, b) in sums.iter_mut().zip(&slot.0) {
                *a += b;
            }
            for (a, b) in counts.iter_mut().zip(&slot.1) {
                *a += b;
            }
        }
        (sums, counts)
    }
}

/// Distributed K-means (extension beyond the paper, exercising the same
/// substrate as distributed Heat): each rank owns a contiguous slice of
/// the points and a runtime instance; per iteration the ranks compute
/// local partial sums task-parallel, then combine them with an
/// all-reduce over `das-msg` and each derive the identical new
/// centroids. Returns the final centroids (same on every rank).
pub fn run_distributed(
    mk_runtime: impl Fn(usize) -> das_runtime::Runtime + Sync,
    ranks: usize,
    km: &KMeans,
    iters: usize,
    chunks_per_rank: usize,
) -> Vec<f64> {
    assert!(ranks >= 1 && km.len() >= ranks * km.k);
    let comm = das_msg::Communicator::new(ranks);
    let k = km.k;
    let dim = km.dim;
    let init = km.initial_centroids();
    let n = km.len();

    let mut results: Vec<Vec<f64>> = std::thread::scope(|s| {
        let handles: Vec<_> = comm
            .endpoints()
            .into_iter()
            .map(|ep| {
                let mk = &mk_runtime;
                let r = ep.rank();
                let lo = r * n / ranks;
                let hi = (r + 1) * n / ranks;
                // Local instance keeps the *global* k so assignments use
                // the same centroid space on every rank.
                let local = KMeans::new(km.data[lo * dim..hi * dim].to_vec(), dim, k);
                let init = init.clone();
                s.spawn(move || {
                    let rt = mk(r);
                    let mut cents = init;
                    for it in 0..iters {
                        // Task-parallel local partials (reusing the
                        // shared-memory iteration graph, minus reduce).
                        let (sums, counts) =
                            local.parallel_partials(&rt, &cents, chunks_per_rank, it as u64);
                        // Encode [sums..., counts...] for the allreduce.
                        let mut payload = sums;
                        payload.extend(counts.iter().map(|&c| c as f64));
                        let combined = ep.allreduce_sum(payload);
                        let (gs, gc) = combined.split_at(k * dim);
                        let counts: Vec<usize> = gc.iter().map(|&c| c as usize).collect();
                        cents = global_finish(gs, &counts, &cents, k, dim);
                    }
                    cents
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("kmeans rank thread panicked"))
            .collect()
    });
    let first = results.remove(0);
    for other in results {
        assert_eq!(other, first, "ranks must agree on the centroids");
    }
    first
}

fn global_finish(sums: &[f64], counts: &[usize], old: &[f64], k: usize, dim: usize) -> Vec<f64> {
    let mut out = vec![0.0; k * dim];
    for c in 0..k {
        if counts[c] == 0 {
            out[c * dim..(c + 1) * dim].copy_from_slice(&old[c * dim..(c + 1) * dim]);
        } else {
            for j in 0..dim {
                out[c * dim + j] = sums[c * dim + j] / counts[c] as f64;
            }
        }
    }
    out
}

/// The Fig. 9 iteration shape for the simulator: `chunks` chunk tasks
/// (chunk 0 twice the work, high priority) joined by a reduction.
pub fn iteration_dag(chunks: usize, iteration: u64) -> Dag {
    generators::data_parallel_iteration(
        types::KMEANS_CHUNK,
        types::KMEANS_REDUCE,
        chunks,
        2.0,
        iteration,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_core::Policy;
    use das_topology::Topology;

    #[test]
    fn sequential_converges_to_blob_centers() {
        let km = KMeans::generate(300, 2, 3, 42);
        let c = km.run_sequential(20);
        // Each final centroid should be close to one of the generating
        // blobs — cheap sanity: re-assign all points, no empty cluster.
        let (_, counts) = km.partial(&c, 0, km.len(), 0, 1);
        assert!(counts.iter().all(|&n| n > 0), "{counts:?}");
    }

    #[test]
    fn partial_strides_cover_all_points() {
        let km = KMeans::generate(101, 3, 4, 7);
        let c = km.initial_centroids();
        let (full_s, full_c) = km.partial(&c, 0, km.len(), 0, 1);
        let mut s = [0.0; 12];
        let mut n = vec![0usize; 4];
        for rank in 0..3 {
            let (ps, pc) = km.partial(&c, 0, km.len(), rank, 3);
            for (a, b) in s.iter_mut().zip(&ps) {
                *a += b;
            }
            for (a, b) in n.iter_mut().zip(&pc) {
                *a += b;
            }
        }
        assert_eq!(n, full_c);
        for (a, b) in s.iter().zip(&full_s) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn chunk_bounds_tile_and_frontload() {
        let km = KMeans::generate(120, 2, 2, 1);
        let b = km.chunk_bounds(5);
        assert_eq!(b.len(), 5);
        assert_eq!(b[0].0, 0);
        assert_eq!(b.last().unwrap().1, 120);
        for w in b.windows(2) {
            assert_eq!(w[0].1, w[1].0, "contiguous");
        }
        let size0 = b[0].1 - b[0].0;
        let size1 = b[1].1 - b[1].0;
        assert_eq!(size0, 2 * size1, "chunk 0 carries double work");
    }

    #[test]
    fn runtime_matches_sequential() {
        let km = KMeans::generate(200, 2, 3, 9);
        let reference = km.run_sequential(5);
        for policy in [Policy::Rws, Policy::DamC, Policy::DamP] {
            let rt = Runtime::new(Arc::new(Topology::symmetric(4)), policy);
            let (got, times) = km.run_on_runtime(&rt, 5, 4);
            assert_eq!(times.len(), 5);
            for (a, b) in got.iter().zip(&reference) {
                assert!((a - b).abs() < 1e-9, "{policy}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn distributed_matches_sequential() {
        let km = KMeans::generate(400, 2, 4, 123);
        let want = km.run_sequential(6);
        let got = run_distributed(
            |_r| Runtime::new(Arc::new(Topology::symmetric(2)), Policy::DamC),
            4,
            &km,
            6,
            3,
        );
        assert_eq!(got.len(), want.len());
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn iteration_dag_shape() {
        let d = iteration_dag(16, 3);
        d.validate().unwrap();
        assert_eq!(d.len(), 17);
        assert_eq!(d.num_high_priority(), 1);
        assert_eq!(
            d.task_types(),
            vec![types::KMEANS_CHUNK, types::KMEANS_REDUCE]
        );
    }
}
