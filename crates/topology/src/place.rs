//! Execution places: `(leader core, resource width)` tuples.

use crate::{CoreId, Topology};
use std::fmt;

/// An execution place, the unit of task assignment (§2 of the paper).
///
/// `leader` is the core whose PTT row records the observation and which
/// performs the weighted PTT update when the task commits; `width` is the
/// number of cooperating cores. The member cores are the `width`-aligned
/// block of the leader's cluster that contains the leader, starting at
/// [`ExecutionPlace::first_core`].
///
/// Displayed as `(C<leader>,<width>)`, the notation of Fig. 5/9 in the
/// paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ExecutionPlace {
    /// Leader core (the PTT row owner).
    pub leader: CoreId,
    /// Number of cooperating cores.
    pub width: usize,
    first: CoreId,
}

impl ExecutionPlace {
    pub(crate) fn new(leader: CoreId, width: usize, first: CoreId) -> Self {
        debug_assert!(width > 0);
        debug_assert!((first.0..first.0 + width).contains(&leader.0));
        ExecutionPlace {
            leader,
            width,
            first,
        }
    }

    /// A width-1 place on `core` (always valid). Useful for schedulers
    /// that never mold (RWS, FA, DA).
    pub fn solo(core: CoreId) -> Self {
        ExecutionPlace {
            leader: core,
            width: 1,
            first: core,
        }
    }

    /// First member core of the aligned block.
    pub fn first_core(&self) -> CoreId {
        self.first
    }

    /// All member cores, ascending. The leader is always among them.
    pub fn member_cores(&self) -> impl Iterator<Item = CoreId> + 'static {
        (self.first.0..self.first.0 + self.width).map(CoreId)
    }

    /// Rank of `core` within this place (`0..width`), or `None` if the
    /// core is not a member. Task bodies use the rank to partition work.
    pub fn rank_of(&self, core: CoreId) -> Option<usize> {
        if (self.first.0..self.first.0 + self.width).contains(&core.0) {
            Some(core.0 - self.first.0)
        } else {
            None
        }
    }

    /// `true` if `core` participates in this place.
    pub fn contains(&self, core: CoreId) -> bool {
        self.rank_of(core).is_some()
    }

    /// Parallel cost weight: the product `width × predicted_time` is what
    /// the `*-C` schedulers minimise.
    pub fn cost_weight(&self) -> f64 {
        self.width as f64
    }
}

impl fmt::Display for ExecutionPlace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(C{},{})", self.leader.0, self.width)
    }
}

/// Iterator over every valid execution place of a topology (the global
/// search space). Yields places core-major, width-minor, i.e. the PTT row
/// of core 0 first.
pub struct PlaceIter<'t> {
    topo: &'t Topology,
    core: usize,
    width_idx: usize,
}

impl<'t> PlaceIter<'t> {
    pub(crate) fn new(topo: &'t Topology) -> Self {
        PlaceIter {
            topo,
            core: 0,
            width_idx: 0,
        }
    }
}

impl Iterator for PlaceIter<'_> {
    type Item = ExecutionPlace;

    fn next(&mut self) -> Option<ExecutionPlace> {
        while self.core < self.topo.num_cores() {
            let cl = self.topo.cluster_of(CoreId(self.core));
            let widths = cl.valid_widths();
            if self.width_idx >= widths.len() {
                self.core += 1;
                self.width_idx = 0;
                continue;
            }
            let w = widths[self.width_idx];
            self.width_idx += 1;
            if let Some(p) = self.topo.place(CoreId(self.core), w) {
                return Some(p);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Topology;

    #[test]
    fn display_matches_paper_notation() {
        let t = Topology::tx2();
        let p = t.place(CoreId(2), 4).unwrap();
        assert_eq!(p.to_string(), "(C2,4)");
        assert_eq!(ExecutionPlace::solo(CoreId(0)).to_string(), "(C0,1)");
    }

    #[test]
    fn rank_of_members() {
        let t = Topology::tx2();
        let p = t.place(CoreId(3), 4).unwrap(); // block {2,3,4,5}
        assert_eq!(p.rank_of(CoreId(2)), Some(0));
        assert_eq!(p.rank_of(CoreId(3)), Some(1));
        assert_eq!(p.rank_of(CoreId(5)), Some(3));
        assert_eq!(p.rank_of(CoreId(0)), None);
        assert!(p.contains(CoreId(4)));
        assert!(!p.contains(CoreId(1)));
    }

    #[test]
    fn iterator_is_exhaustive_and_unique() {
        let t = Topology::haswell_2x8();
        let v: Vec<_> = t.places().collect();
        let mut dedup = v.clone();
        dedup.sort_by_key(|p| (p.leader, p.width));
        dedup.dedup();
        assert_eq!(dedup.len(), v.len(), "no duplicate places");
        // Every (core,width) with valid alignment appears.
        for c in t.cores() {
            for &w in t.cluster_of(c).valid_widths() {
                if let Some(p) = t.place(c, w) {
                    assert!(v.contains(&p));
                }
            }
        }
    }
}
