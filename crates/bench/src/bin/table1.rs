//! Table 1: features summary of all evaluated schedulers — plus the
//! executor backends any of them can be driven on.

use das_core::exec::{Executor, SessionBuilder};
use das_core::Policy;
use das_runtime::Runtime;
use das_sim::Simulator;
use das_topology::Topology;
use std::sync::Arc;

fn main() {
    println!("Table 1. Features summary of all evaluated schedulers");
    println!(
        "{:<8} {:<22} {:<13} {:<18}",
        "Name", "[A]symmetry awareness", "[M]oldability", "Priority placement"
    );
    for p in Policy::ALL {
        println!(
            "{:<8} {:<22} {:<13} {:<18}",
            p.name(),
            p.asymmetry_awareness(),
            if p.moldable() { "Yes" } else { "No" },
            p.priority_placement(),
        );
    }

    // Every policy above runs unchanged on either side of the executor
    // contract: one SessionBuilder, two backends.
    let session = SessionBuilder::new(Arc::new(Topology::tx2()), Policy::DamC);
    let sim = Simulator::from_session(&session);
    let rt = Runtime::from_session(&session);
    println!(
        "\nExecutor backends (das_core::exec::Executor): {} (simulated clock), {} (wall clock)",
        Executor::backend(&sim),
        Executor::backend(&rt),
    );
}
