//! Routing policies of the cluster dispatcher.
//!
//! Every policy is a pure function of (policy state, seeded RNG, the
//! load view) — no clocks, no thread identity — so a fixed route seed
//! makes the whole routing sequence reproducible. The load view is fed
//! exclusively by per-node reports shipped back over the message layer
//! (`wire::T_LOAD`), never by dispatcher-side guessing: because every
//! node pushes a fresh report *before* acknowledging a command, the
//! view is exact by the time the next routing decision runs, which is
//! what makes [`RoutePolicy::LeastOutstanding`] and
//! [`RoutePolicy::PowerOfTwo`] deterministic for the simulator backend.

use rand::rngs::SmallRng;
use rand::Rng;

/// How the dispatcher assigns an incoming job to a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RoutePolicy {
    /// Cycle through the nodes in order, ignoring load. The baseline:
    /// perfectly balanced for uniform jobs, oblivious to stragglers.
    RoundRobin,
    /// Route to the node with the fewest outstanding jobs (ties to the
    /// lowest node id). Optimal balance, O(nodes) per decision.
    LeastOutstanding,
    /// Power of two choices: sample two distinct nodes with the seeded
    /// RNG and take the less loaded (ties to the lower id). O(1) per
    /// decision with near-least-outstanding balance — the classic
    /// load-balancing result, and the default.
    PowerOfTwo,
}

impl RoutePolicy {
    /// Every policy, for sweeps and differential tests.
    pub const ALL: [RoutePolicy; 3] = [
        RoutePolicy::RoundRobin,
        RoutePolicy::LeastOutstanding,
        RoutePolicy::PowerOfTwo,
    ];

    /// Short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            RoutePolicy::RoundRobin => "round-robin",
            RoutePolicy::LeastOutstanding => "least-out",
            RoutePolicy::PowerOfTwo => "po2",
        }
    }
}

/// One routing decision. `loads[i]` is node `i`'s last reported
/// outstanding-job count; `rr` is the round-robin cursor (advanced by
/// the caller's borrow).
pub(crate) fn pick(
    policy: RoutePolicy,
    loads: &[f64],
    rr: &mut usize,
    rng: &mut SmallRng,
) -> usize {
    let n = loads.len();
    debug_assert!(n > 0);
    match policy {
        RoutePolicy::RoundRobin => {
            let node = *rr % n;
            *rr = (*rr + 1) % n;
            node
        }
        RoutePolicy::LeastOutstanding => argmin(loads, 0..n),
        RoutePolicy::PowerOfTwo => {
            if n == 1 {
                return 0;
            }
            let a = rng.gen_range(0..n);
            let mut b = rng.gen_range(0..n - 1);
            if b >= a {
                b += 1;
            }
            argmin(loads, [a.min(b), a.max(b)])
        }
    }
}

/// Index of the smallest load among `candidates`, first (lowest id)
/// wins ties.
fn argmin(loads: &[f64], candidates: impl IntoIterator<Item = usize>) -> usize {
    candidates
        .into_iter()
        .fold(None, |best: Option<usize>, i| match best {
            Some(b) if loads[b] <= loads[i] => Some(b),
            _ => Some(i),
        })
        .expect("at least one candidate")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn round_robin_cycles() {
        let loads = [5.0, 0.0, 0.0];
        let mut rr = 0;
        let mut rng = SmallRng::seed_from_u64(1);
        let picks: Vec<usize> = (0..6)
            .map(|_| pick(RoutePolicy::RoundRobin, &loads, &mut rr, &mut rng))
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2], "load-oblivious cycle");
    }

    #[test]
    fn least_outstanding_takes_the_minimum_with_low_id_ties() {
        let mut rr = 0;
        let mut rng = SmallRng::seed_from_u64(1);
        let node = pick(
            RoutePolicy::LeastOutstanding,
            &[3.0, 1.0, 1.0, 2.0],
            &mut rr,
            &mut rng,
        );
        assert_eq!(node, 1);
    }

    #[test]
    fn power_of_two_prefers_the_lighter_sample() {
        // One node massively loaded: po2 must avoid it whenever its
        // sample pair contains any alternative, i.e. always (n = 2).
        let mut rr = 0;
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..50 {
            let node = pick(RoutePolicy::PowerOfTwo, &[100.0, 0.0], &mut rr, &mut rng);
            assert_eq!(node, 1);
        }
        // Single node: always 0, no RNG draw needed.
        assert_eq!(pick(RoutePolicy::PowerOfTwo, &[9.0], &mut rr, &mut rng), 0);
    }

    #[test]
    fn power_of_two_is_seed_reproducible() {
        let run = |seed| {
            let mut rr = 0;
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..32)
                .map(|_| pick(RoutePolicy::PowerOfTwo, &[0.0; 8], &mut rr, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds explore differently");
    }

    #[test]
    fn names_are_stable() {
        for p in RoutePolicy::ALL {
            assert!(!p.name().is_empty());
        }
    }
}
