//! Rule 5 fixture: a metric-family enum in the shape of
//! `das_core::MetricKind`.

#[derive(Clone, Copy, Debug)]
pub enum MetricKind {
    QueueDepth,
    JobsCompleted,
    Utilization,
    SojournP99,
}
