//! Differential job-stream test: one seeded arrival stream through both
//! backends. The simulator executes it with arrival events in simulated
//! time (bit-reproducibly); the threaded runtime executes the same
//! graphs on its persistent worker pool. Both must complete every job
//! and produce consistent per-job accounting.

use das::core::jobs::{JobId, JobSpec};
use das::core::Policy;
use das::dag::Dag;
use das::exec::{Executor, SessionBuilder};
use das::runtime::{Runtime, TaskGraph};
use das::sim::Simulator;
use das::topology::Topology;
use das::workloads::arrivals::{JobShape, StreamConfig};
use std::sync::Arc;

/// The runtime executes the same DAG shapes with no-op bodies: the
/// differential contract is about scheduling/accounting, not kernels.
fn to_task_graph(dag: &Dag) -> TaskGraph {
    TaskGraph::noop_from_dag(dag)
}

fn stream() -> Vec<JobSpec<Dag>> {
    // ~5 ms of work per job (UniformCost 1 ms/task, parallelism 4) and
    // ~4 ms mean interarrival: enough pressure that jobs overlap.
    StreamConfig::poisson(42, 10, 250.0)
        .shape(JobShape::Mixed {
            parallelism: 4,
            layers: 6,
        })
        .slack(30.0)
        .generate()
}

#[test]
fn both_backends_complete_the_same_stream_with_consistent_accounting() {
    let jobs = stream();

    // --- simulator, through the executor façade ---
    let mut sim = Simulator::from_session(
        &SessionBuilder::new(Arc::new(Topology::tx2()), Policy::DamC).seed(7),
    );
    let sim_stats = Executor::run_stream(&mut sim, jobs.clone())
        .expect("sim stream completes")
        .jobs;

    // --- runtime ---
    let rt = Runtime::new(Arc::new(Topology::symmetric(4)), Policy::DamC);
    let handles: Vec<_> = jobs
        .iter()
        .map(|spec| {
            let g = to_task_graph(&spec.graph);
            rt.submit(
                JobSpec::new(g)
                    .at(spec.arrival)
                    .deadline(spec.deadline.unwrap())
                    .class(spec.class),
            )
            .expect("submit")
        })
        .collect();
    let drained = rt.drain();

    // Every job completed, in both backends, with populated stats.
    assert_eq!(sim_stats.jobs.len(), jobs.len());
    assert_eq!(drained.len(), jobs.len());
    for (j, spec) in jobs.iter().enumerate() {
        let s = &sim_stats.jobs[j];
        assert_eq!(s.id, JobId(j as u64));
        assert_eq!(s.tasks, spec.graph.len(), "sim task count");
        assert_eq!(s.class, spec.class);
        assert!(s.arrival == spec.arrival);
        assert!(s.started >= s.arrival, "sim job {j} started before arrival");
        assert!(s.completed > s.started, "sim job {j} empty execution");
        assert!(s.sojourn() >= s.makespan());

        let out = handles[j].wait();
        assert_eq!(out.stats.id, JobId(j as u64));
        assert_eq!(out.stats.tasks, spec.graph.len(), "runtime task count");
        assert_eq!(out.rt.tasks, spec.graph.len());
        let committed: usize = out.rt.all_places.values().sum();
        assert_eq!(committed, spec.graph.len(), "runtime per-job histogram");
        assert!(out.stats.completed >= out.stats.started);
        assert!(out.stats.started >= out.stats.arrival);
    }
    // Same total work through both backends.
    let rt_tasks: usize = drained.iter().map(|j| j.tasks).sum();
    assert_eq!(sim_stats.tasks, rt_tasks);
    // The generous 30 s relative deadline holds everywhere.
    assert_eq!(sim_stats.deadlines(), (jobs.len(), jobs.len()));

    // Aggregates are well-formed.
    assert!(sim_stats.jobs_per_sec() > 0.0);
    let p50 = sim_stats.sojourn_percentile(0.5).unwrap();
    let p99 = sim_stats.sojourn_percentile(0.99).unwrap();
    assert!(p50 <= p99);
}

#[test]
fn sim_side_ordering_is_bit_reproducible() {
    let jobs = stream();
    let run = || {
        let mut sim = Simulator::from_session(
            &SessionBuilder::new(Arc::new(Topology::tx2()), Policy::DamC).seed(7),
        );
        Executor::run_stream(&mut sim, jobs.clone()).expect("sim stream completes")
    };
    let a = run();
    let b = run();
    // Full structural equality: per-job arrival/start/completion times,
    // span, task counts — bit-for-bit.
    assert_eq!(a, b);
}

#[test]
fn stream_generation_is_deterministic_across_backend_conversions() {
    // The Dag -> TaskGraph conversion preserves shape and metadata, so
    // both backends consume the *same* stream, not lookalikes.
    let jobs = stream();
    for spec in &jobs {
        let g = to_task_graph(&spec.graph);
        assert_eq!(g.len(), spec.graph.len());
        g.validate().unwrap();
        let shape = g.shape();
        for (id, node) in spec.graph.iter() {
            assert_eq!(shape.node(id).meta, node.meta);
            assert_eq!(shape.node(id).succs, node.succs);
        }
    }
}
