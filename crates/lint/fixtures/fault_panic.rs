//! Fixture: intentional panics with and without `fault-ok:`.

pub fn kill_unjustified(admitted: u64) {
    panic!("killed after {admitted} jobs");
}

pub fn kill_justified(admitted: u64) {
    // fault-ok: the spawn wrapper catches this and reports NodeFailed.
    panic!("killed after {admitted} jobs");
}

pub fn rethrow_unjustified(payload: Box<dyn std::any::Any + Send>) {
    std::panic::panic_any(payload);
}

pub fn catcher_is_not_a_panic() {
    // `std::panic::catch_unwind` mentions the `panic` path segment but
    // invokes no macro — rule 6 must not fire here.
    let _ = std::panic::catch_unwind(|| ());
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_panics_freely() {
        panic!("assertions may panic without justification");
    }
}
