//! Fixture: justified lock-order sites — the `lock-ok:` tag suppresses
//! the diagnostics, but every edge stays in the reported graph.

pub struct Pair;

impl Pair {
    fn forward(&self) {
        let a = self.alpha.lock();
        // lock-ok: backward() only ever runs on this same thread.
        let b = self.beta.lock();
        drop(b);
        drop(a);
    }

    fn backward(&self) {
        let b = self.beta.lock();
        // lock-ok: see forward() — a single-thread handoff protocol.
        let a = self.alpha.lock();
        drop(a);
        drop(b);
    }

    fn parked(&self) {
        let stats = self.stats.lock();
        // lock-ok: the sender never takes stats, so no contender stalls.
        let frame = self.chan.recv();
        drop(stats);
        frame
    }
}
