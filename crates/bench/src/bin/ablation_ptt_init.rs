//! Ablation (beyond the paper): PTT initialisation. §4.1.1 initialises
//! entries to zero, "ensuring that all possible execution places are
//! evaluated at least once". The alternative — a pessimistic prior that
//! makes unexplored places look expensive — never explores and should
//! lock the scheduler into its first observations.

use das_bench::{scale_from_args, SEED};
use das_core::Policy;
use das_sim::{Environment, Modifier, SimConfig, Simulator};
use das_topology::{CoreId, Topology};
use das_workloads::cost::PaperCost;
use das_workloads::synthetic::{self, Kernel};
use das_workloads::types;
use std::sync::Arc;

fn main() {
    let scale = scale_from_args();
    println!("Ablation — PTT initialisation (DAM-C, MatMul, co-runner on core 0)");
    println!(
        "{:>12} {:>16} {:>18}",
        "parallelism", "zero-init [t/s]", "pessimistic [t/s]"
    );
    for p in [2usize, 4, 6] {
        let run = |pessimistic: bool| {
            let topo = Arc::new(Topology::tx2());
            let mut sim = Simulator::new(
                SimConfig::new(Arc::clone(&topo), Policy::DamC)
                    .cost(Arc::new(PaperCost::new()))
                    .seed(SEED),
            );
            if pessimistic {
                // Pre-fill every entry with a large value: searches have
                // no zero (explore-me) entries, so whichever place the
                // very first observation improves wins forever.
                let ptt = sim.scheduler().ptts().table(types::MATMUL);
                for place in Topology::tx2().places() {
                    ptt.seed(place.leader, place.width, 1.0);
                }
            }
            sim.set_env(
                Environment::interference_free(Arc::clone(&sim.config().topo))
                    .and(Modifier::compute_corunner(CoreId(0))),
            );
            let dag = synthetic::dag(Kernel::MatMul, p, scale);
            sim.run(&dag).expect("ablation run").throughput()
        };
        println!("{:>12} {:>16.0} {:>18.0}", p, run(false), run(true));
    }
}
