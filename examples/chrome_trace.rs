//! Export a simulated run as a Chrome trace (`chrome://tracing`,
//! Perfetto, Speedscope) plus the built-in ASCII Gantt view.
//!
//! ```sh
//! cargo run --release --example chrome_trace [out.json]
//! ```

use das::cluster::{ClusterBuilder, RoutePolicy};
use das::core::jobs::JobSpec;
use das::core::{MetricsConfig, Policy, TaskTypeId};
use das::dag::generators;
use das::exec::{Executor, SessionBuilder};
use das::sim::{validate_chrome_json, Environment, Modifier, SimConfig, Simulator};
use das::topology::{ClusterId, CoreId, Topology};
use das::workloads::cost::PaperCost;
use std::sync::Arc;

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "das-trace.json".to_string());

    let topo = Arc::new(Topology::tx2());
    let dag = generators::layered(TaskTypeId(0), 4, 120);

    let mut sim = Simulator::new(
        SimConfig::new(Arc::clone(&topo), Policy::DamC).cost(Arc::new(PaperCost::new())),
    );
    sim.set_env(
        Environment::interference_free(Arc::clone(&topo))
            .and(Modifier::compute_corunner(CoreId(0)))
            .and(Modifier::tx2_dvfs(ClusterId(0))),
    );
    sim.record_trace(true);
    let stats = sim.run(&dag).expect("sim run");
    let trace = sim.take_trace();

    println!(
        "ran {} tasks in {:.3}s simulated ({:.0} tasks/s)\n",
        stats.tasks,
        stats.makespan,
        stats.throughput()
    );

    println!("per-core utilisation:");
    for (c, u) in trace.utilization().iter().enumerate() {
        println!("  C{c}: {:>5.1}%", u * 100.0);
    }

    println!("\nwhere the time went, per task type:");
    for (ty, n, total, mean) in trace.by_type() {
        println!(
            "  {ty}: {n} spans, {total:.3}s busy, mean {:.3}ms",
            mean * 1e3
        );
    }

    println!("\nASCII Gantt (digit = task type, '.' = idle):");
    print!("{}", trace.gantt(96));

    assert!(trace.find_overlap().is_none(), "trace must be physical");
    std::fs::write(&out, trace.to_chrome_json()).expect("write trace file");
    println!("\nChrome trace written to {out} — load it in chrome://tracing or Perfetto.");

    // ----------------------------------------------------------------
    // Multi-node merge: the same export over a 4-node sim cluster.
    // Each node ships its spans to the dispatcher over the wire
    // (`collect_trace`), and the merged document maps node → pid and
    // core → tid so one Perfetto view shows the whole fleet.
    // ----------------------------------------------------------------
    let base = SessionBuilder::new(Arc::new(Topology::tx2()), Policy::DamC)
        .seed(42)
        .metrics(MetricsConfig::default().with_trace());
    let mut cluster = ClusterBuilder::new(base, 4)
        .route(RoutePolicy::RoundRobin)
        .build_sim();
    let jobs = (0..8)
        .map(|j| JobSpec::new(generators::layered(TaskTypeId(0), 4, 12)).at(j as f64 * 1e-3))
        .collect();
    let report = cluster.run_stream(jobs).expect("cluster stream");
    let merged = cluster.collect_trace().expect("pull spans from nodes");
    let json = merged.to_chrome_json();
    let events = validate_chrome_json(&json).expect("merged trace is valid JSON");

    let cluster_out = out.replace(".json", "-cluster.json");
    std::fs::write(&cluster_out, &json).expect("write cluster trace");
    println!(
        "\ncluster: {} jobs on 4 nodes, {} spans merged into {} trace events \
         (pid = node, tid = core) — written to {cluster_out}",
        report.jobs.jobs.len(),
        merged.total_spans(),
        events,
    );
}
