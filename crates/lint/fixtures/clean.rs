//! Positive fixture: every hazard justified; the audit must be clean
//! even under the strictest classification (det-critical lib code).
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

pub struct State {
    table: HashMap<u64, u64>,
    hits: AtomicU64,
}

impl State {
    pub fn merge(&mut self) -> Vec<u64> {
        // det-ok: folded into a sum, order-insensitive
        let total: u64 = self.table.values().sum();
        // relaxed-ok: standalone counter, no release/acquire pairing
        self.hits.fetch_add(total, Ordering::Relaxed);
        vec![total]
    }

    pub fn reset(&mut self) -> u64 {
        // SAFETY: no-op transmute of u64 to itself (fixture).
        let v = unsafe { std::mem::transmute::<u64, u64>(7) };
        self.table.clear();
        self.hits.swap(v, Ordering::AcqRel);
        self.hits.load(Ordering::SeqCst)
    }
}
