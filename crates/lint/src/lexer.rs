//! A small comment/string-aware lexer for Rust source.
//!
//! The rule engine never wants a full AST — it wants to answer "does
//! this *code* (not a comment, not a string literal) mention token X on
//! line N, and what does the *comment* on line N say?". So the lexer
//! produces, per line, two parallel views:
//!
//! * `code` — the source line with comment text and string/char literal
//!   *contents* replaced by spaces (delimiters kept). Pattern matches
//!   against this view cannot false-positive on prose or log messages.
//! * `comment` — the concatenated comment text of the line (doc and
//!   plain, line and block), which is where justification annotations
//!   (`det-ok:`, `relaxed-ok:`, `SAFETY:`, …) live.
//!
//! The state machine understands nested block comments, string escapes,
//! raw strings (`r"…"`, `r#"…"#`, byte variants) and the char-literal /
//! lifetime ambiguity (`'a'` vs `'static`). That is everything the rule
//! set needs; it is deliberately not a general tokenizer.

/// One source line, split into its code view and its comment view.
#[derive(Debug, Clone, Default)]
pub struct LineInfo {
    /// Code with comments and literal contents masked to spaces.
    pub code: String,
    /// Comment text (both `//` and `/* */`) appearing on this line.
    pub comment: String,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Nested block comments: Rust block comments nest, so we track depth.
    BlockComment(u32),
    Str,
    /// Raw string with `n` leading hashes (`r##"…"##` has `n == 2`).
    RawStr(u32),
}

/// Split `source` into per-line code/comment views.
pub fn mask(source: &str) -> Vec<LineInfo> {
    let chars: Vec<char> = source.chars().collect();
    let mut lines = Vec::new();
    let mut cur = LineInfo::default();
    let mut state = State::Code;
    let mut i = 0;

    // Helper: close out a line on '\n'.
    macro_rules! newline {
        () => {{
            lines.push(std::mem::take(&mut cur));
            if state == State::LineComment {
                state = State::Code;
            }
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            newline!();
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    state = State::LineComment;
                    cur.code.push_str("  ");
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(1);
                    cur.code.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    state = State::Str;
                    cur.code.push('"');
                    i += 1;
                } else if is_raw_str_start(&chars, i) {
                    // Consume the prefix (`r`, `br`, hashes) up to and
                    // including the opening quote.
                    let mut hashes = 0;
                    while chars[i] != '"' {
                        if chars[i] == '#' {
                            hashes += 1;
                        }
                        cur.code.push(chars[i]);
                        i += 1;
                    }
                    cur.code.push('"');
                    i += 1;
                    state = State::RawStr(hashes);
                } else if c == '\'' && is_char_literal(&chars, i) {
                    // Mask the char literal contents, keep the quotes.
                    cur.code.push('\'');
                    i += 1;
                    while i < chars.len() && chars[i] != '\'' && chars[i] != '\n' {
                        if chars[i] == '\\' {
                            cur.code.push(' ');
                            i += 1;
                            if i < chars.len() && chars[i] != '\n' {
                                cur.code.push(' ');
                                i += 1;
                            }
                        } else {
                            cur.code.push(' ');
                            i += 1;
                        }
                    }
                    if i < chars.len() && chars[i] == '\'' {
                        cur.code.push('\'');
                        i += 1;
                    }
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                cur.comment.push(c);
                cur.code.push(' ');
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    cur.code.push_str("  ");
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(depth + 1);
                    cur.code.push_str("  ");
                    i += 2;
                } else {
                    cur.comment.push(c);
                    cur.code.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    if chars.get(i + 1) == Some(&'\n') {
                        // String line-continuation: keep line accounting.
                        newline!();
                        i += 2;
                    } else {
                        cur.code.push_str("  ");
                        i += 2; // escape sequence: skip the escaped char too
                    }
                } else if c == '"' {
                    cur.code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && raw_str_closes(&chars, i, hashes) {
                    cur.code.push('"');
                    for _ in 0..hashes {
                        cur.code.push('#');
                    }
                    i += 1 + hashes as usize;
                    state = State::Code;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
        }
    }
    // Final line without trailing newline.
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        lines.push(cur);
    }
    lines
}

/// Is `chars[i]` the start of a raw-string prefix (`r"`, `r#"`, `br"`)?
fn is_raw_str_start(chars: &[char], i: usize) -> bool {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return false;
    }
    // An identifier ending in `r` (e.g. `var"`) must not match: the
    // char before `i` must not be part of an identifier.
    if i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
        return false;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Does the raw string with `hashes` hashes close at the `"` at `i`?
fn raw_str_closes(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Disambiguate `'a'` (char literal) from `'static` (lifetime): a char
/// literal is `'` + one (possibly escaped) char + `'`.
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// Does `code` contain `token` as a whole word (not an identifier
/// substring)? `token` itself may contain `::` path separators.
pub fn has_token(code: &str, token: &str) -> bool {
    find_token(code, token).is_some()
}

/// Byte offset of the first whole-word occurrence of `token` in `code`.
pub fn find_token(code: &str, token: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find(token) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + token.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return Some(at);
        }
        start = at + 1;
    }
    None
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Tokenize a masked code line into identifier and punctuation tokens
/// (string/char delimiters come through as punctuation; contents are
/// already spaces). Multi-char operators are not glued except `::`,
/// which the rules need for path matching.
pub fn tokens(code: &str) -> Vec<String> {
    let chars: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if c.is_alphanumeric() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            out.push(chars[start..i].iter().collect());
        } else if c == ':' && chars.get(i + 1) == Some(&':') {
            out.push("::".to_string());
            i += 2;
        } else {
            out.push(c.to_string());
            i += 1;
        }
    }
    out
}

/// Flatten the whole file into one token stream, each token tagged
/// with its 0-based line index. This is the substrate the graph layer
/// ([`crate::parse`]) works on: item boundaries, call sites and lock
/// acquisitions all span lines, so per-line matching cannot see them.
pub fn token_stream(lines: &[LineInfo]) -> Vec<(usize, String)> {
    lines
        .iter()
        .enumerate()
        .flat_map(|(i, l)| tokens(&l.code).into_iter().map(move |t| (i, t)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_are_split_out() {
        let l = mask("let x = 1; // Instant::now would be bad\n");
        assert!(!has_token(&l[0].code, "Instant::now"));
        assert!(l[0].comment.contains("Instant::now"));
        assert!(has_token(&l[0].code, "let"));
    }

    #[test]
    fn string_contents_are_masked() {
        let l = mask("let s = \"Instant::now inside\"; s.unwrap()\n");
        assert!(!l[0].code.contains("Instant::now"));
        assert!(l[0].code.contains(".unwrap()"));
    }

    #[test]
    fn nested_block_comments_and_multiline() {
        let l = mask("a /* one /* two */ still */ b\n/* open\nInstant::now\n*/ c\n");
        assert!(has_token(&l[0].code, "a") && has_token(&l[0].code, "b"));
        assert!(!l[2].code.contains("Instant::now"));
        assert!(l[2].comment.contains("Instant::now"));
        assert!(has_token(&l[3].code, "c"));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let l = mask("let p = r#\"thread_rng() \"quoted\" \"#; x()\n");
        assert!(!l[0].code.contains("thread_rng"));
        assert!(l[0].code.contains("x()"));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let l = mask("fn f<'a>(x: &'a str) { let q = 'q'; let e = '\\''; }\n");
        assert!(l[0].code.contains("'a"), "lifetime survives masking");
        assert!(!l[0].code.contains('q') || !l[0].code.contains("'q'"));
    }

    #[test]
    fn escaped_quote_does_not_terminate_string() {
        let l = mask("let s = \"a\\\"b.unwrap()\"; t()\n");
        assert!(!l[0].code.contains(".unwrap()"));
        assert!(l[0].code.contains("t()"));
    }

    #[test]
    fn token_boundaries_respected() {
        assert!(has_token("x.unwrap()", "unwrap"));
        assert!(!has_token("x.unwrap_or(0)", "unwrap"));
        assert!(has_token("Ordering::Relaxed", "Ordering::Relaxed"));
        assert!(!has_token("MyOrdering::Relaxedish", "Ordering::Relaxed"));
    }
}
