//! Executable task graphs: DAG shape + one closure per task.

use das_core::jobs::JobSpec;
use das_core::{Priority, TaskMeta, TaskTypeId};
use das_dag::{Dag, DagError, TaskId};
use das_topology::{CoreId, ExecutionPlace};
use std::sync::Arc;

/// Execution context handed to a task body. A moldable task body
/// partitions its work by `rank` / `width` (SPMD style), exactly like a
/// XiTAO assembly region.
#[derive(Clone, Copy, Debug)]
pub struct TaskCtx {
    /// This participant's rank within the place, `0..width`.
    pub rank: usize,
    /// Number of cooperating workers.
    pub width: usize,
    /// The place the task was assigned.
    pub place: ExecutionPlace,
    /// The worker (core) executing this participant.
    pub core: CoreId,
}

/// A task body. `Fn` not `FnOnce`: with width > 1 the same body runs once
/// per participant, each with a different [`TaskCtx::rank`].
pub type TaskFn = dyn Fn(&TaskCtx) + Send + Sync;

/// A runnable DAG: shape (from `das-dag`) plus bodies.
///
/// Cloning is shallow and cheap: the shape is copied, the bodies are
/// shared (`Arc` bumps). The persistent worker pool relies on this —
/// one-shot callers clone a borrowed graph into an owned
/// [`crate::JobSpec`] for submission.
#[derive(Clone)]
pub struct TaskGraph {
    shape: Dag,
    bodies: Vec<Arc<TaskFn>>,
}

impl TaskGraph {
    /// Empty graph with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        TaskGraph {
            shape: Dag::new(name),
            bodies: Vec::new(),
        }
    }

    /// Add a task with full metadata and its body.
    pub fn add_meta<F>(&mut self, meta: TaskMeta, body: F) -> TaskId
    where
        F: Fn(&TaskCtx) + Send + Sync + 'static,
    {
        let id = self.shape.add_task_meta(meta);
        self.bodies.push(Arc::new(body));
        id
    }

    /// Add a task with type + priority and its body.
    pub fn add<F>(&mut self, ty: TaskTypeId, priority: Priority, body: F) -> TaskId
    where
        F: Fn(&TaskCtx) + Send + Sync + 'static,
    {
        self.add_meta(TaskMeta::new(ty, priority), body)
    }

    /// Declare a dependency: `to` runs only after `from` commits.
    pub fn add_edge(&mut self, from: TaskId, to: TaskId) {
        self.shape.add_edge(from, to);
    }

    /// A graph with the same shape and task metadata as `dag` and no-op
    /// bodies. This is how differential harnesses feed the *same*
    /// seeded job stream to both executor backends: the simulator
    /// executes the `Dag` against its cost model, the runtime executes
    /// this conversion — identical scheduling inputs, no kernels.
    pub fn noop_from_dag(dag: &Dag) -> Self {
        let mut g = TaskGraph::new(dag.name());
        for (_, node) in dag.iter() {
            g.add_meta(node.meta, |_| {});
        }
        for (id, node) in dag.iter() {
            for &s in &node.succs {
                g.add_edge(id, s);
            }
        }
        g
    }

    /// [`TaskGraph::noop_from_dag`] lifted to a whole job: the graph is
    /// converted and the spec's arrival, class and deadline carry over
    /// unchanged — so a simulator stream and its runtime counterpart
    /// cannot drift in anything but the bodies.
    pub fn noop_job_from_dag(spec: &JobSpec<Dag>) -> JobSpec<TaskGraph> {
        let mut converted = JobSpec::new(TaskGraph::noop_from_dag(&spec.graph)).class(spec.class);
        // `at` validates; arrivals from an existing spec are already
        // valid, but route through the builder for one code path.
        converted = converted.at(spec.arrival);
        if let Some(d) = spec.deadline {
            converted = converted.deadline(d);
        }
        converted
    }

    /// The DAG shape (read-only).
    pub fn shape(&self) -> &Dag {
        &self.shape
    }

    /// The body of task `id`.
    pub fn body(&self, id: TaskId) -> &Arc<TaskFn> {
        &self.bodies[id.index()]
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.shape.len()
    }

    /// `true` when no task has been added.
    pub fn is_empty(&self) -> bool {
        self.shape.is_empty()
    }

    /// Structural validation (delegates to [`Dag::validate`]).
    pub fn validate(&self) -> Result<(), DagError> {
        self.shape.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn build_and_validate() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut g = TaskGraph::new("t");
        let c = Arc::clone(&counter);
        let a = g.add(TaskTypeId(0), Priority::Low, move |_| {
            c.fetch_add(1, Ordering::Relaxed); // relaxed-ok: test counter; wait() joins every task before the read
        });
        let c = Arc::clone(&counter);
        let b = g.add(TaskTypeId(0), Priority::High, move |_| {
            c.fetch_add(10, Ordering::Relaxed); // relaxed-ok: test counter; wait() joins every task before the read
        });
        g.add_edge(a, b);
        g.validate().unwrap();
        assert_eq!(g.len(), 2);
        // Bodies callable directly.
        let ctx = TaskCtx {
            rank: 0,
            width: 1,
            place: ExecutionPlace::solo(CoreId(0)),
            core: CoreId(0),
        };
        (g.body(a))(&ctx);
        (g.body(b))(&ctx);
        assert_eq!(counter.load(Ordering::Relaxed), 11); // relaxed-ok: read after wait(); job completion orders the counters
    }
}
