//! # das-cluster — a sharded, fault-tolerant multi-node scheduling tier
//!
//! Everything below the executor contract schedules *within* one node:
//! the PTT, Algorithm 1 and the two-queue discipline place tasks on the
//! cores of a single platform. This crate adds the tier above: a
//! [`Cluster`] that owns N node-local executors (each a `das-sim` or
//! `das-runtime` instance built from its own
//! [`SessionBuilder`]) stitched together over [`das_msg::Endpoint`]s —
//! and whose dispatcher **itself implements
//! [`das_core::exec::Executor`]**, so any client written against
//! `&mut dyn Executor` (the `job_stream` example, the `jobs_throughput`
//! harness, the contract tests) scales from one node to a fleet with
//! zero changes.
//!
//! ## Architecture
//!
//! Each node is a **failure domain**: the dispatcher talks to node `i`
//! over a *private two-rank* [`das_msg::Communicator`] (dispatcher rank
//! 0, node rank 1), and node `i` runs a **node agent** thread owning
//! its executor. Private links — rather than one shared N+1-rank
//! communicator — mean membership churn never resizes a shared rank
//! space and a dead node can never wedge a collective. Three planes
//! share each link:
//!
//! * **control** — submit/wait/drain/shutdown commands and their
//!   acknowledgements as point-to-point messages (graphs themselves
//!   move through an in-process side channel; `das_msg` payloads are
//!   `f64` rows, and task closures could never transit a wire format —
//!   on a real deployment this channel is the RPC body);
//! * **load** — after *every* command a node pushes its
//!   outstanding-job count back over the message layer; the dispatcher
//!   collapses the backlog with [`das_msg::Endpoint::try_recv_latest`]
//!   and routes by [`RoutePolicy`] (round-robin, least-outstanding, or
//!   seeded power-of-two-choices) over that view, skipping dead nodes;
//! * **stats** — `drain` sends every live node one command and reads
//!   back one combined reply `[ACK_OK, jobs, tasks, records…, extras]`
//!   whose header cross-checks the decoded records — a wire-format
//!   regression trips an assert, not a silently wrong percentile.
//!
//! ## Failure domains and recovery
//!
//! Every control RPC is bounded: the dispatcher waits with a deadline
//! and bounded exponential backoff ([`das_msg::Endpoint::recv_backoff`])
//! and surfaces a typed [`ExecError::Timeout`] instead of hanging. A
//! node-agent panic is caught at the thread boundary; the wrapper
//! publishes a down flag and sends `ERR_NODE_FAILED` as its last frame,
//! so the blocked dispatcher learns of the death *deterministically* —
//! as a frame, not a timeout race — and decodes it into
//! [`ExecError::NodeFailed`].
//!
//! On a detected death the dispatcher repairs the cluster from its
//! **spec ledger** (enabled by [`Cluster::enable_recovery`]; on by
//! default for [`ClusterBuilder::build_sim`] /
//! [`ClusterBuilder::build_runtime`]): jobs the dead node had admitted
//! but never started are requeued onto survivors through the normal
//! routing policy (`jobs_requeued`), started-but-unfinished jobs are
//! re-submitted **at most once** (`retries`), and jobs whose retry
//! budget is spent redeem as [`ExecError::NodeFailed`] (`jobs_lost`).
//! The failure itself is attributed in the merged extras as
//! `node{i}.failed`.
//!
//! Deterministic **fault injection** drives all of this in tests: a
//! seeded [`das_core::FaultSchedule`] on the base session plants
//! logical triggers (die at the k-th admitted job, drop or delay load
//! reports, withhold acks, inflate reported load) that the node agents
//! consult at fixed points — no wall-clock, so a faulty run is exactly
//! as bit-reproducible as a healthy one.
//!
//! ## Membership churn
//!
//! [`Cluster::add_node`] grows the fleet between drains;
//! [`Cluster::remove_node`] retires a node gracefully — its pending
//! (never-started) jobs move onto peers first, its remaining records
//! are banked for the next [`Executor::drain`], and its slot index is
//! never reused. Session tags stay monotone across churn because every
//! executor draws from the same global tag counter.
//!
//! ## Tickets and ids
//!
//! The cluster issues its own dense [`JobId`]s and stamps tickets with
//! its own session tag; the route table maps each cluster job to
//! `(node, node-local id)`. Node-local tickets — stamped with the node
//! executor's *own* session tag — never leave their node agent, so a
//! forged or stale cluster ticket can never redeem a node job directly.
//!
//! ## Determinism
//!
//! Routing is a pure function of the route seed and the load view, and
//! the load view is updated synchronously (a node reports *before* it
//! acknowledges), so the job→node assignment is reproducible; each
//! `das-sim` node is bit-reproducible given its session seed; therefore
//! an all-sim cluster is **bit-reproducible end to end** — with or
//! without scheduled faults — and a 1-node sim cluster is bit-identical
//! to a bare `Simulator` session (pinned by `tests/cluster_exec.rs`
//! and `tests/cluster_faults.rs`).
//!
//! ```
//! use das_cluster::{ClusterBuilder, RoutePolicy};
//! use das_core::exec::{Executor, SessionBuilder};
//! use das_core::jobs::JobSpec;
//! use das_core::{Policy, TaskTypeId};
//! use das_dag::generators;
//! use das_topology::Topology;
//! use std::sync::Arc;
//!
//! let base = SessionBuilder::new(Arc::new(Topology::tx2()), Policy::DamC).seed(42);
//! let mut cluster = ClusterBuilder::new(base, 3)
//!     .route(RoutePolicy::PowerOfTwo)
//!     .build_sim();
//! for j in 0..6 {
//!     let dag = generators::chain(TaskTypeId(0), 4);
//!     cluster.submit(JobSpec::new(dag).at(j as f64 * 1e-3)).unwrap();
//! }
//! let stats = cluster.drain().unwrap();
//! assert_eq!(stats.jobs.len(), 6);
//! ```
//!
//! A seeded node kill, recovered on the survivors:
//!
//! ```
//! use das_cluster::{ClusterBuilder, RoutePolicy};
//! use das_core::exec::{Executor, SessionBuilder};
//! use das_core::jobs::JobSpec;
//! use das_core::{FaultSchedule, Policy, TaskTypeId};
//! use das_dag::generators;
//! use das_topology::Topology;
//! use std::sync::Arc;
//!
//! let base = SessionBuilder::new(Arc::new(Topology::tx2()), Policy::DamC)
//!     .seed(7)
//!     .fault_schedule(FaultSchedule::new(7).kill(1, 2));
//! let mut cluster = ClusterBuilder::new(base, 3)
//!     .route(RoutePolicy::RoundRobin)
//!     .build_sim();
//! for j in 0..9 {
//!     let dag = generators::chain(TaskTypeId(0), 4);
//!     cluster.submit(JobSpec::new(dag).at(j as f64 * 1e-3)).unwrap();
//! }
//! // Node 1 dies at its third admission; the full stream still
//! // completes on the survivors.
//! let stats = cluster.drain().unwrap();
//! assert_eq!(stats.jobs.len(), 9);
//! let extras = cluster.take_extras();
//! assert_eq!(extras.get("node1.failed"), Some(1.0));
//! ```

mod route;
mod wire;

pub use route::RoutePolicy;

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use das_core::exec::{session_tag, ExecError, ExecExtras, Executor, SessionBuilder, Ticket};
use das_core::fault::{FaultKind, FaultPlane};
use das_core::jobs::{JobId, JobSpec, JobStats, StreamStats};
use das_core::metrics::{ExecProbe, MetricKind, MetricsConfig, MetricsReport, NodeSnapshot};
use das_dag::Dag;
use das_msg::{Communicator, Endpoint, Payload};
use das_runtime::{Runtime, TaskGraph};
use das_sim::{ClusterTrace, Simulator};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use wire::{
    ACK_OK, DISPATCHER, ERR_UNKNOWN_TICKET, NODE, OP_DRAIN, OP_DRAIN_SUMMARY, OP_PULL_TRACE,
    OP_SHUTDOWN, OP_SUBMIT, OP_SUBMIT_MANY, OP_WAIT, T_ACK, T_CTRL, T_LOAD, T_METRICS,
};

/// Human-readable label of a scheduled fault, used by failover tooling
/// (the `cluster_failover` example) and by the das-lint cross-file
/// contract that forces this crate to account for every
/// [`FaultKind`] the fault plane can schedule.
pub fn fault_kind_name(kind: &FaultKind) -> &'static str {
    match kind {
        FaultKind::Kill { .. } => "kill",
        FaultKind::DropLoadReports { .. } => "drop-load-reports",
        FaultKind::DelayLoadReports { .. } => "delay-load-reports",
        FaultKind::DropAcks { .. } => "drop-acks",
        FaultKind::Slow { .. } => "slow",
    }
}

/// Builds a [`Cluster`]: per-node sessions, routing policy, route seed,
/// control-RPC deadline.
///
/// [`ClusterBuilder::new`] derives node `i`'s session from the base by
/// offsetting the seed by `i` — node 0 keeps the base seed, which is
/// what makes a 1-node cluster bit-identical to the bare backend built
/// from the same session. [`ClusterBuilder::from_sessions`] accepts
/// fully heterogeneous nodes (different topologies, policies, seeds).
/// The base (first) session's [`das_core::FaultSchedule`] — if any —
/// becomes the cluster's fault plane.
#[derive(Clone, Debug)]
pub struct ClusterBuilder {
    sessions: Vec<SessionBuilder>,
    policy: RoutePolicy,
    route_seed: u64,
    rpc_base: Duration,
    rpc_attempts: u32,
}

/// Default first-wait window of a control RPC; doubles each attempt.
const DEFAULT_RPC_BASE: Duration = Duration::from_millis(500);
/// Default attempt count: with the 500ms base the total budget is
/// 31.5s — generous enough that a healthy-but-busy runtime node never
/// spuriously times out, small enough that a wedged one is a test
/// failure, not a CI hang.
const DEFAULT_RPC_ATTEMPTS: u32 = 6;

impl ClusterBuilder {
    /// `nodes` homogeneous nodes derived from `base` (node `i` runs
    /// with seed `base.seed + i`, everything else shared).
    ///
    /// # Panics
    /// Panics if `nodes == 0`.
    pub fn new(base: SessionBuilder, nodes: usize) -> Self {
        assert!(nodes > 0, "a cluster needs at least one node");
        let sessions = (0..nodes)
            .map(|i| {
                let mut s = base.clone();
                s.seed = base.seed.wrapping_add(i as u64);
                s
            })
            .collect();
        let route_seed = base.seed;
        ClusterBuilder {
            sessions,
            policy: RoutePolicy::PowerOfTwo,
            route_seed,
            rpc_base: DEFAULT_RPC_BASE,
            rpc_attempts: DEFAULT_RPC_ATTEMPTS,
        }
    }

    /// Heterogeneous nodes, one per session.
    ///
    /// # Panics
    /// Panics if `sessions` is empty.
    pub fn from_sessions(sessions: Vec<SessionBuilder>) -> Self {
        assert!(!sessions.is_empty(), "a cluster needs at least one node");
        let route_seed = sessions[0].seed;
        ClusterBuilder {
            sessions,
            policy: RoutePolicy::PowerOfTwo,
            route_seed,
            rpc_base: DEFAULT_RPC_BASE,
            rpc_attempts: DEFAULT_RPC_ATTEMPTS,
        }
    }

    /// Set the routing policy (default: power of two choices).
    pub fn route(mut self, policy: RoutePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Seed the routing RNG independently of the node sessions
    /// (default: the first session's seed).
    pub fn route_seed(mut self, seed: u64) -> Self {
        self.route_seed = seed;
        self
    }

    /// First-wait window of every control RPC (default 500ms). The
    /// window doubles on each retry, so the total deadline is
    /// `base × (2^attempts − 1)`.
    pub fn rpc_deadline(mut self, base: Duration) -> Self {
        self.rpc_base = base;
        self
    }

    /// Number of backoff attempts per control RPC (default 6; clamped
    /// to at least 1).
    pub fn rpc_attempts(mut self, attempts: u32) -> Self {
        self.rpc_attempts = attempts.max(1);
        self
    }

    /// The per-node sessions this builder will construct from.
    pub fn sessions(&self) -> &[SessionBuilder] {
        &self.sessions
    }

    /// A cluster of `das-sim` nodes (`Simulator::from_session` each),
    /// with failure recovery enabled.
    pub fn build_sim(self) -> Cluster<Dag> {
        let mut cluster = self.build_with(|_, session| Simulator::from_session(session));
        cluster.enable_recovery();
        cluster
    }

    /// A cluster of `das-runtime` nodes (`Runtime::from_session` each);
    /// worker threads per node are the node topology's core count.
    /// Failure recovery is enabled.
    pub fn build_runtime(self) -> Cluster<TaskGraph> {
        let mut cluster = self.build_with(|_, session| Runtime::from_session(session));
        cluster.enable_recovery();
        cluster
    }

    /// A cluster over any executor backend: `factory(i, &session)`
    /// builds node `i`. All nodes must share one graph type — mixing
    /// backends with different graph representations cannot present a
    /// single `Executor<Graph = G>` front. The factory is retained so
    /// [`Cluster::add_node`] can spawn later members; recovery is *not*
    /// enabled here (the graph type may not be `Clone`) — call
    /// [`Cluster::enable_recovery`] if it is.
    pub fn build_with<E, F>(self, factory: F) -> Cluster<E::Graph>
    where
        E: Executor + Send + 'static,
        E::Graph: Send + 'static,
        F: FnMut(usize, &SessionBuilder) -> E + Send + 'static,
    {
        let n = self.sessions.len();
        // Per-node admission bounds, from each session's knob: the
        // dispatcher sheds at these bounds *before* any wire traffic,
        // and the node executors (built from the same sessions)
        // enforce the identical bound behind it.
        let limits: Vec<f64> = self
            .sessions
            .iter()
            .map(|s| s.max_outstanding.map_or(f64::INFINITY, |l| l as f64))
            .collect();
        let faults = self.sessions[0].fault_schedule.clone().unwrap_or_default();
        let mut factory = factory;
        let mut spawner: Spawner<E::Graph> = Box::new(move |i, session| {
            let exec = factory(i, session);
            spawn_node(i, exec, faults.plane_for(i), session.metrics)
        });
        let nodes: Vec<NodeSlot<E::Graph>> = self
            .sessions
            .iter()
            .enumerate()
            .map(|(i, session)| spawner(i, session))
            .collect();
        Cluster {
            nodes,
            alive: vec![true; n],
            spawner,
            policy: self.policy,
            rng: SmallRng::seed_from_u64(self.route_seed),
            rr: 0,
            loads: vec![0.0; n],
            node_metrics: vec![None; n],
            limits,
            route: HashMap::new(),
            retained: HashMap::new(),
            lost: HashMap::new(),
            cloner: None,
            banked_jobs: Vec::new(),
            banked_extras: ExecExtras::default(),
            next_job: 0,
            exec_session: session_tag(),
            exec_extras: ExecExtras::default(),
            rpc_base: self.rpc_base,
            rpc_attempts: self.rpc_attempts,
        }
    }
}

/// Spawns node `i` from its session: builds the executor, wires the
/// private link and starts the agent thread. Boxed so [`Cluster`] can
/// keep it for [`Cluster::add_node`] without being generic over the
/// factory.
type Spawner<G> = Box<dyn FnMut(usize, &SessionBuilder) -> NodeSlot<G> + Send>;

/// Dispatcher-side handle of one node: the graph side channel, the
/// node's last error message (strings stay in-process; only codes
/// cross the payload format), the dispatcher end of the private link,
/// the agent's down flag and its join handle. Slots of dead or removed
/// nodes stay in place so node indices are stable for the lifetime of
/// the cluster.
struct NodeSlot<G> {
    tx: Sender<JobSpec<G>>,
    errs: Arc<Mutex<String>>,
    ep: Endpoint,
    down: Arc<AtomicBool>,
    agent: Option<JoinHandle<()>>,
}

/// Where a cluster job went, and whether any node-side execution has
/// been triggered for it (a `wait` or `drain` reaching its node starts
/// the node's whole pending batch) — the bit that decides requeue
/// (exactly-once so far) versus retry (at-most-once re-submission).
#[derive(Clone, Copy, Debug)]
struct NodeRoute {
    node: usize,
    local: u64,
    started: bool,
}

/// Ledger entry for one in-flight job: the spec copy recovery would
/// re-submit, and whether its single retry has been spent.
struct Retained<G> {
    spec: JobSpec<G>,
    retried: bool,
}

/// Monomorphic spec copier installed by [`Cluster::enable_recovery`]; a
/// plain `fn` pointer keeps `Cluster<G>` itself free of a `G: Clone`
/// bound.
type SpecCloner<G> = fn(&JobSpec<G>) -> JobSpec<G>;

/// The sharded scheduling tier: N node-local executors behind one
/// dispatcher that speaks the [`Executor`] contract. See the crate docs
/// for the architecture and failure semantics; build with
/// [`ClusterBuilder`].
pub struct Cluster<G> {
    nodes: Vec<NodeSlot<G>>,
    /// Liveness per slot. Dead and removed nodes keep their slot (and
    /// index) but are skipped by routing, load refresh and drain.
    alive: Vec<bool>,
    spawner: Spawner<G>,
    policy: RoutePolicy,
    rng: SmallRng,
    rr: usize,
    /// Last load report per node (outstanding jobs), fed exclusively by
    /// `T_LOAD` messages; pinned to 0 for dead nodes.
    loads: Vec<f64>,
    /// Latest metrics snapshot per node, fed exclusively by `T_METRICS`
    /// frames (keep-latest, like the loads); cleared for dead nodes.
    /// All `None` unless the node sessions enabled
    /// [`SessionBuilder::metrics`].
    node_metrics: Vec<Option<NodeSnapshot>>,
    /// Per-node admission bound (`f64::INFINITY` when unbounded),
    /// from each node session's `max_outstanding`.
    limits: Vec<f64>,
    /// Cluster job id → node placement, for every submitted job not yet
    /// waited or drained.
    route: HashMap<u64, NodeRoute>,
    /// Spec ledger: cluster job id → re-submittable copy, populated
    /// while recovery is enabled.
    retained: HashMap<u64, Retained<G>>,
    /// Jobs a node took down with it (no spec copy, or retry budget
    /// spent): cluster job id → the node that failed. Their tickets
    /// redeem as [`ExecError::NodeFailed`].
    lost: HashMap<u64, usize>,
    /// Monomorphic spec copier — `Some` once [`Cluster::enable_recovery`]
    /// ran.
    cloner: Option<SpecCloner<G>>,
    /// Records and extras banked by [`Cluster::remove_node`], folded
    /// into the next [`Executor::drain`].
    banked_jobs: Vec<JobStats>,
    banked_extras: ExecExtras,
    next_job: u64,
    exec_session: u64,
    exec_extras: ExecExtras,
    rpc_base: Duration,
    rpc_attempts: u32,
}

impl<G: Clone> Cluster<G> {
    /// Turn on failure recovery: from here on the dispatcher retains a
    /// copy of every submitted spec until its job completes, so jobs on
    /// a dead node can be requeued (never-started) or retried at most
    /// once (started). [`ClusterBuilder::build_sim`] and
    /// [`ClusterBuilder::build_runtime`] enable this automatically;
    /// [`ClusterBuilder::build_with`] leaves it off because an
    /// arbitrary graph type may not be `Clone`.
    pub fn enable_recovery(&mut self) {
        self.cloner = Some(clone_spec::<G>);
    }
}

/// The monomorphic target of [`Cluster::enable_recovery`]'s `fn`
/// pointer.
fn clone_spec<G: Clone>(spec: &JobSpec<G>) -> JobSpec<G> {
    spec.clone()
}

impl<G> Cluster<G> {
    /// Number of node slots ever created — live, dead and removed
    /// (indices are stable and never reused).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of live nodes.
    pub fn live_nodes(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Is node `node` live (spawned, not failed, not removed)?
    pub fn is_alive(&self, node: usize) -> bool {
        self.alive.get(node).copied().unwrap_or(false)
    }

    /// Whether the spec ledger is active (see
    /// [`Cluster::enable_recovery`]).
    pub fn recovery_enabled(&self) -> bool {
        self.cloner.is_some()
    }

    /// The routing policy in force.
    pub fn route_policy(&self) -> RoutePolicy {
        self.policy
    }

    /// The node an outstanding ticket's job was routed to; `None` for
    /// tickets of other executors or jobs already waited/drained.
    pub fn node_of(&self, ticket: &Ticket) -> Option<usize> {
        (ticket.session() == self.exec_session)
            .then(|| self.route.get(&ticket.job().0).map(|r| r.node))
            .flatten()
    }

    /// Grow the fleet: spawn a new node from `session` (with the fault
    /// plane its fresh index selects from the cluster's schedule) and
    /// open it to routing. Returns the new node's index. Session tags
    /// stay monotone — the new executor draws from the same global
    /// counter as every earlier one.
    pub fn add_node(&mut self, session: &SessionBuilder) -> usize {
        let idx = self.nodes.len();
        let slot = (self.spawner)(idx, session);
        self.nodes.push(slot);
        self.alive.push(true);
        self.loads.push(0.0);
        self.node_metrics.push(None);
        self.limits
            .push(session.max_outstanding.map_or(f64::INFINITY, |l| l as f64));
        idx
    }

    /// Retire node `node` gracefully: its pending (never-started,
    /// ledger-backed) jobs move onto peers first (`jobs_requeued`), it
    /// then drains — records banked for the next [`Executor::drain`],
    /// minus the speculative executions of the moved jobs — and shuts
    /// down. The slot index is never reused. Rejects removing a dead
    /// node or the last live one.
    pub fn remove_node(&mut self, node: usize) -> Result<(), ExecError> {
        if !self.is_alive(node) {
            return Err(ExecError::Rejected(format!("node {node} is not live")));
        }
        if self.live_nodes() == 1 {
            return Err(ExecError::Rejected(
                "cannot remove the last live node".into(),
            ));
        }
        // Close the node to routing before moving its queue, so the
        // requeues below cannot land back on it.
        self.alive[node] = false;
        // 1. Move the pending queue onto peers. Only never-started
        //    ledger-backed jobs move (a started batch is already
        //    executing node-side); their node-local records are
        //    discarded below — the peer's execution is the one that
        //    counts.
        let mut discard: HashSet<u64> = HashSet::new();
        if self.cloner.is_some() {
            let mut pending: Vec<u64> = self
                .route
                // det-ok: ids are collected into a Vec and sorted
                // before any routing decision is made from them.
                .iter()
                .filter(|(id, r)| r.node == node && !r.started && self.retained.contains_key(*id))
                .map(|(&id, _)| id)
                .collect();
            pending.sort_unstable();
            for id in pending {
                let r = self.route.remove(&id).expect("pending id is routed");
                let keep = self.retained.remove(&id).expect("pending id is retained");
                let cloner = self.cloner.expect("a retained spec implies a cloner");
                match self.place_anywhere(cloner(&keep.spec)) {
                    Ok((new_node, local)) => {
                        discard.insert(r.local);
                        self.route.insert(
                            id,
                            NodeRoute {
                                node: new_node,
                                local,
                                started: false,
                            },
                        );
                        self.retained.insert(id, keep);
                        self.exec_extras.bump("jobs_requeued", 1.0);
                    }
                    Err(_) => {
                        // No peer can take it: leave it on the leaving
                        // node, whose drain below executes it locally.
                        self.route.insert(id, r);
                        self.retained.insert(id, keep);
                    }
                }
            }
        }
        // 2. Drain the leaving node and bank its records (minus the
        //    moved jobs' speculative executions) for the next cluster
        //    drain.
        self.mark_started(node);
        self.nodes[node].ep.send(NODE, T_CTRL, vec![OP_DRAIN]);
        match self.rpc_recv(node) {
            Ok(p) if p.first() == Some(&ACK_OK) => {
                let (recs, extras) = decode_drain_ok(&p);
                let mut recs_out = Vec::new();
                let mut merged = std::mem::take(&mut self.banked_extras);
                self.fold_node_records(node, recs, extras, &discard, &mut recs_out, &mut merged);
                self.banked_jobs.append(&mut recs_out);
                self.banked_extras = merged;
            }
            Ok(p) => {
                let err = wire::decode_err(&p, node, self.node_error(node));
                if matches!(err, ExecError::NodeFailed { .. }) {
                    // Died while leaving: fall through to the failure
                    // path (alive is restored so the handler runs).
                    self.alive[node] = true;
                    self.handle_node_down(node);
                    return Ok(());
                }
                // A failed drain loses the node's batch, exactly like a
                // failed drain on the bare backend; still shut it down.
                self.exec_extras
                    .bump("jobs_orphaned", self.jobs_on(node) as f64);
                self.forget_routes_on(node);
            }
            Err(ExecError::NodeFailed { .. }) => {
                self.alive[node] = true;
                self.handle_node_down(node);
                return Ok(());
            }
            Err(e) => {
                self.alive[node] = true;
                return Err(e);
            }
        }
        // 3. Shut the agent down and join it.
        self.nodes[node].ep.send(NODE, T_CTRL, vec![OP_SHUTDOWN]);
        if let Some(agent) = self.nodes[node].agent.take() {
            let _ = agent.join();
        }
        self.loads[node] = 0.0;
        self.node_metrics[node] = None;
        self.exec_extras.set(format!("node{node}.removed"), 1.0);
        Ok(())
    }

    /// Route entries currently pointing at `node`.
    fn jobs_on(&self, node: usize) -> usize {
        // det-ok: counting is order-insensitive.
        self.route.values().filter(|r| r.node == node).count()
    }

    /// Drop every route/ledger entry pointing at `node` (their tickets
    /// redeem as `UnknownTicket` from here on).
    fn forget_routes_on(&mut self, node: usize) {
        let ids: Vec<u64> = self
            .route
            // det-ok: ids are collected into a Vec; the per-id removals
            // below are order-insensitive.
            .iter()
            .filter(|(_, r)| r.node == node)
            .map(|(&id, _)| id)
            .collect();
        for id in ids {
            self.route.remove(&id);
            self.retained.remove(&id);
        }
    }

    /// Fold every pending load report into the routing view (newest
    /// report per node wins; dead nodes stay pinned at 0).
    fn refresh_loads(&mut self) {
        for (i, load) in self.loads.iter_mut().enumerate() {
            if !self.alive[i] {
                continue;
            }
            if let Some(p) = self.nodes[i].ep.try_recv_latest(NODE, T_LOAD) {
                if let Some(&v) = p.first() {
                    *load = v;
                }
            }
        }
    }

    /// Fold every pending `T_METRICS` frame into the per-node snapshot
    /// view (newest frame per node wins, exactly like the loads; a
    /// misframed frame is skipped and only costs freshness).
    fn refresh_metrics(&mut self) {
        for (i, slot) in self.node_metrics.iter_mut().enumerate() {
            if !self.alive[i] {
                continue;
            }
            if let Some(p) = self.nodes[i].ep.try_recv_latest(NODE, T_METRICS) {
                if let Some(snap) = wire::decode_snapshot(&p) {
                    *slot = Some(snap);
                }
            }
        }
    }

    /// The cluster-wide observability view: the latest metrics snapshot
    /// of every live node that has pushed one, in node-index order.
    /// Empty unless the node sessions enabled
    /// [`SessionBuilder::metrics`]. Non-blocking — this only folds in
    /// frames already on the links; snapshots arrive on logical
    /// triggers (every `snapshot_every` admitted jobs, and at every
    /// drain).
    pub fn metrics_report(&mut self) -> MetricsReport {
        self.refresh_metrics();
        MetricsReport {
            nodes: self
                .node_metrics
                .iter()
                .flatten()
                // det-ok: node_metrics is indexed by node, so this
                // iteration is in stable node order.
                .cloned()
                .collect(),
        }
    }

    /// Write the cluster totals of the merged [`MetricsReport`] into
    /// the extras map, one `metrics.<kind>` value per [`MetricKind`].
    /// No-op while no node has pushed a snapshot, so the metrics-off
    /// extras surface is byte-identical to the pre-observability one.
    fn flatten_metrics(&mut self) {
        let report = self.metrics_report();
        if report.nodes.is_empty() {
            return;
        }
        let totals = report.totals();
        for kind in MetricKind::ALL {
            self.exec_extras.set(
                format!("metrics.{}", kind.name()),
                metric_scalar(kind, &totals),
            );
        }
    }

    /// Drain every live node for a *summary* — counts, span, extras and
    /// the node's post-drain snapshot — without shipping one wire slot
    /// per completed job. The cluster-wide percentiles come from the
    /// merged sketches instead of per-job records, so the reply size is
    /// independent of how many jobs completed. The stream's tickets are
    /// retired exactly as by [`Executor::drain`] (outstanding routes
    /// clear; un-waited tickets redeem as `UnknownTicket` afterwards).
    ///
    /// Requires metrics-enabled node sessions; a node that never
    /// enabled metrics answers with an all-zero sketch snapshot, which
    /// merges harmlessly. On a node death or error the summary fails
    /// with the typed error after the failure plane repairs the cluster
    /// — use [`Executor::drain`] when per-job records (or mid-drain
    /// recovery) are required.
    pub fn drain_summary(&mut self) -> Result<DrainSummary, ExecError> {
        let mut jobs = 0u64;
        let mut tasks = 0u64;
        // Global stream endpoints, folded across banked records and
        // every node reply: span = last completion − first arrival,
        // exactly what `StreamStats::from_jobs` reports over the
        // merged records of a full drain.
        let mut t0 = f64::INFINITY;
        let mut t1 = 0.0f64;
        let mut nodes = Vec::new();
        let mut merged = std::mem::take(&mut self.banked_extras);
        for rec in std::mem::take(&mut self.banked_jobs) {
            jobs += 1;
            tasks += rec.tasks as u64;
            t0 = t0.min(rec.arrival);
            t1 = t1.max(rec.completed);
        }
        let targets: Vec<usize> = (0..self.nodes.len()).filter(|&i| self.alive[i]).collect();
        for &node in &targets {
            self.mark_started(node);
            self.nodes[node]
                .ep
                .send(NODE, T_CTRL, vec![OP_DRAIN_SUMMARY]);
        }
        let mut first_err: Option<ExecError> = None;
        for &node in &targets {
            match self.rpc_recv(node) {
                Ok(p) if p.first() == Some(&ACK_OK) => {
                    let (j, t, n0, n1, extras, snap) = wire::decode_summary_ok(&p);
                    jobs += j;
                    tasks += t;
                    t0 = t0.min(n0);
                    t1 = t1.max(n1);
                    merged.bump(&format!("node{node}.jobs"), j as f64);
                    attribute_extras(node, &extras, &mut merged);
                    merged.absorb(extras);
                    self.node_metrics[node] = Some(snap.clone());
                    nodes.push(snap);
                }
                Ok(p) => {
                    let err = wire::decode_err(&p, node, self.node_error(node));
                    if matches!(err, ExecError::NodeFailed { .. }) {
                        self.handle_node_down(node);
                    }
                    first_err.get_or_insert(err);
                }
                Err(ExecError::NodeFailed { .. }) => {
                    self.handle_node_down(node);
                    first_err.get_or_insert(ExecError::NodeFailed { node });
                }
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        self.refresh_loads();
        self.route.clear();
        self.retained.clear();
        if let Some(e) = first_err {
            return Err(e);
        }
        self.exec_extras.absorb(merged);
        self.exec_extras.set("nodes", self.live_nodes() as f64);
        self.flatten_metrics();
        Ok(DrainSummary {
            jobs,
            tasks,
            span: if jobs == 0 { 0.0 } else { t1 - t0 },
            report: MetricsReport { nodes },
        })
    }

    /// Pull every live node's accumulated execution trace spans and
    /// assemble the unified multi-node chrome trace (**pid = node,
    /// tid = core**). Draining: each node's span buffer empties. Spans
    /// only accumulate when the node sessions enabled
    /// [`das_core::MetricsConfig::with_trace`]; nodes without spans
    /// contribute empty process groups.
    pub fn collect_trace(&mut self) -> Result<ClusterTrace, ExecError> {
        let targets: Vec<usize> = (0..self.nodes.len()).filter(|&i| self.alive[i]).collect();
        let mut per_node = Vec::with_capacity(targets.len());
        for &node in &targets {
            self.nodes[node].ep.send(NODE, T_CTRL, vec![OP_PULL_TRACE]);
            let p = self.rpc_recv(node)?;
            if p.first() != Some(&ACK_OK) {
                return Err(wire::decode_err(&p, node, self.node_error(node)));
            }
            let spans = wire::decode_trace_ok(&p[1..]);
            // The node's core count is not on the wire; the span
            // extent (executing cores and assembly widths) bounds the
            // rows any renderer needs.
            let cores = spans
                .iter()
                .map(|s| s.core.max(s.leader + s.width.saturating_sub(1)) + 1)
                .max()
                .unwrap_or(0);
            per_node.push((node, cores, spans));
        }
        Ok(ClusterTrace::from_node_spans(&per_node))
    }

    /// Wire messages this dispatcher has sent, ever (summed over the
    /// per-node links) — the traffic the batch path amortises. One
    /// `submit` costs one control message; a [`Executor::submit_many`]
    /// batch costs one control message **per node with a non-empty
    /// sub-batch** regardless of batch size (the contract
    /// `tests/cluster_exec.rs` asserts).
    pub fn wire_messages_sent(&self) -> u64 {
        self.nodes.iter().map(|s| s.ep.sent_count()).sum()
    }

    /// The typed overload error for a shed decision, attributing the
    /// pressure to the full node(s): their reported outstanding counts
    /// and bounds, summed. For a full single pick these are that node's
    /// numbers; when every node is full (`LoadShed`) it is the
    /// cluster-wide pressure. Only live full nodes enter the sums, so
    /// the casts are finite.
    fn overloaded(&self) -> ExecError {
        let (outstanding, limit) = self
            .loads
            .iter()
            .zip(&self.limits)
            .zip(&self.alive)
            .filter(|((load, limit), alive)| **alive && *load >= *limit)
            .fold((0usize, 0usize), |(o, l), ((load, limit), _)| {
                (o + *load as usize, l + *limit as usize)
            });
        ExecError::Overloaded { outstanding, limit }
    }

    /// The routing error when no node can take a job: every node dead,
    /// or every live node full.
    fn no_pick_error(&self) -> ExecError {
        if self.live_nodes() == 0 {
            ExecError::Failed("every node is down".into())
        } else {
            self.overloaded()
        }
    }

    /// The node's side-channel error string (set before every error
    /// acknowledgement).
    fn node_error(&self, node: usize) -> String {
        let msg = self.nodes[node].errs.lock().clone();
        if msg.is_empty() {
            format!("node {node} failed")
        } else {
            format!("node {node}: {msg}")
        }
    }

    /// Receive one control acknowledgement from `node` under the
    /// bounded-backoff deadline. A missing frame becomes
    /// [`ExecError::NodeFailed`] if the agent's down flag is up (the
    /// frame race lost), else a typed [`ExecError::Timeout`] — never a
    /// hang.
    fn rpc_recv(&self, node: usize) -> Result<Payload, ExecError> {
        match self.nodes[node]
            .ep
            .recv_backoff(NODE, T_ACK, self.rpc_base, self.rpc_attempts)
        {
            Ok((p, _)) => Ok(p),
            Err(waited) => {
                if self.nodes[node].down.load(Ordering::Acquire) {
                    Err(ExecError::NodeFailed { node })
                } else {
                    Err(ExecError::Timeout {
                        waited_ms: waited.as_millis() as u64,
                    })
                }
            }
        }
    }

    /// A `wait` or `drain` reaching `node` executes its whole pending
    /// batch: everything currently routed there counts as started from
    /// here on (the recovery plane's at-most-once boundary).
    fn mark_started(&mut self, node: usize) {
        // det-ok: order-insensitive flag set; every matching entry gets
        // the same value regardless of visit order.
        for r in self.route.values_mut() {
            if r.node == node {
                r.started = true;
            }
        }
    }

    /// Node `node` is gone: mark it dead, join the agent, attribute the
    /// failure, and repair the route table — never-started ledger jobs
    /// requeue onto survivors, started ones retry at most once, the
    /// rest are recorded as lost. Idempotent per node.
    fn handle_node_down(&mut self, node: usize) {
        if !self.alive[node] {
            return;
        }
        self.alive[node] = false;
        self.loads[node] = 0.0;
        self.node_metrics[node] = None;
        if let Some(agent) = self.nodes[node].agent.take() {
            let _ = agent.join();
        }
        self.exec_extras.set(format!("node{node}.failed"), 1.0);
        let mut stranded: Vec<u64> = self
            .route
            // det-ok: ids are collected into a Vec and sorted before
            // any routing decision is made from them.
            .iter()
            .filter(|(_, r)| r.node == node)
            .map(|(&id, _)| id)
            .collect();
        stranded.sort_unstable();
        for id in stranded {
            let r = self.route.remove(&id).expect("stranded id is routed");
            let Some(mut keep) = self.retained.remove(&id) else {
                self.lost.insert(id, node);
                self.exec_extras.bump("jobs_lost", 1.0);
                continue;
            };
            if r.started && keep.retried {
                // The single retry is spent: at-most-once means this
                // job dies with its second node.
                self.lost.insert(id, node);
                self.exec_extras.bump("jobs_lost", 1.0);
                continue;
            }
            let cloner = self.cloner.expect("a retained spec implies a cloner");
            match self.place_anywhere(cloner(&keep.spec)) {
                Ok((new_node, local)) => {
                    if r.started {
                        keep.retried = true;
                        self.exec_extras.bump("retries", 1.0);
                    } else {
                        self.exec_extras.bump("jobs_requeued", 1.0);
                    }
                    self.route.insert(
                        id,
                        NodeRoute {
                            node: new_node,
                            local,
                            started: false,
                        },
                    );
                    self.retained.insert(id, keep);
                }
                Err(_) => {
                    self.lost.insert(id, node);
                    self.exec_extras.bump("jobs_lost", 1.0);
                }
            }
        }
    }

    /// Send one spec to one node and await its admission ack. A dead
    /// side channel or a death frame surfaces as
    /// [`ExecError::NodeFailed`]; the caller decides on recovery.
    fn place_one(&mut self, node: usize, spec: JobSpec<G>) -> Result<u64, ExecError> {
        if self.nodes[node].tx.send(spec).is_err() {
            // The agent's receiver is gone: the thread exited without
            // the dispatcher noticing yet.
            return Err(ExecError::NodeFailed { node });
        }
        self.nodes[node].ep.send(NODE, T_CTRL, vec![OP_SUBMIT]);
        let ack = self.rpc_recv(node)?;
        if ack.first() != Some(&ACK_OK) {
            return Err(wire::decode_err(&ack, node, self.node_error(node)));
        }
        Ok(ack[1] as u64)
    }

    /// Place one spec on whichever live node routing picks, absorbing
    /// node deaths along the way (each death repairs the cluster and
    /// re-picks; terminates because every pass burns a node). Returns
    /// the `(node, local id)` of the admission.
    fn place_anywhere(&mut self, spec: JobSpec<G>) -> Result<(usize, u64), ExecError> {
        let mut spec = spec;
        loop {
            self.refresh_loads();
            let Some(node) = route::pick(
                self.policy,
                &self.loads,
                &self.limits,
                &self.alive,
                &mut self.rr,
                &mut self.rng,
            ) else {
                return Err(self.no_pick_error());
            };
            let backup = self.cloner.map(|c| c(&spec));
            match self.place_one(node, spec) {
                Ok(local) => return Ok((node, local)),
                Err(ExecError::NodeFailed { node: dead }) => {
                    self.handle_node_down(dead);
                    match backup {
                        Some(b) => spec = b,
                        None => return Err(ExecError::NodeFailed { node: dead }),
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Remap one node's drained records onto cluster ids, attribute
    /// them (and the node's extras) in `merged`, and push them into
    /// `jobs`. Records in `discard` (a leaving node's speculative
    /// executions of moved jobs) are dropped; records with no route
    /// entry count as `jobs_orphaned` (reachable via dropped acks —
    /// the node admitted work the dispatcher never ticketed).
    fn fold_node_records(
        &mut self,
        node: usize,
        recs: Vec<JobStats>,
        extras: ExecExtras,
        discard: &HashSet<u64>,
        jobs: &mut Vec<JobStats>,
        merged: &mut ExecExtras,
    ) {
        let mut map: HashMap<u64, u64> = self
            .route
            // det-ok: an order-insensitive fold into a keyed map; the
            // job records built from it are sorted by from_jobs at the
            // emission point and extras are keyed per node, not per
            // job.
            .iter()
            .filter(|(_, r)| r.node == node)
            .map(|(&cluster, r)| (r.local, cluster))
            .collect();
        let mut kept = 0.0;
        for mut rec in recs {
            if discard.contains(&rec.id.0) {
                continue;
            }
            match map.remove(&rec.id.0) {
                Some(cluster) => {
                    self.route.remove(&cluster);
                    self.retained.remove(&cluster);
                    rec.id = JobId(cluster);
                    jobs.push(rec);
                    kept += 1.0;
                }
                None => {
                    merged.bump("jobs_orphaned", 1.0);
                }
            }
        }
        merged.bump(&format!("node{node}.jobs"), kept);
        if let Some(s) = extras.steals {
            merged.bump(&format!("node{node}.steals"), s as f64);
        }
        if let Some(ev) = extras.events {
            merged.bump(&format!("node{node}.events"), ev as f64);
        }
        attribute_extras(node, &extras, merged);
        merged.absorb(extras);
    }
}

/// What [`Cluster::drain_summary`] returns: stream-level counts plus
/// the per-node post-drain snapshots, whose merged sketches carry the
/// cluster-wide percentiles ([`MetricsReport::totals`]).
#[derive(Clone, Debug, PartialEq)]
pub struct DrainSummary {
    /// Completed jobs across the cluster (including records banked by
    /// graceful node removals since the last drain).
    pub jobs: u64,
    /// Tasks those jobs committed.
    pub tasks: u64,
    /// Global stream span: last completion − first arrival across
    /// every node (and banked record), the same quantity
    /// [`das_core::jobs::StreamStats::from_jobs`] reports over the
    /// merged records of a full [`Executor::drain`].
    pub span: f64,
    /// The per-node post-drain snapshots, in reply order (node-index
    /// ascending over the live nodes).
    pub report: MetricsReport,
}

/// Render one [`MetricKind`] of a merged cluster probe as the scalar
/// that lands in the `metrics.<kind>` extras value. This match is the
/// das-lint cross-file contract target for `MetricKind`: adding a
/// metric kind without deciding its cluster merge fails the lint, not
/// a reader of half-populated extras.
pub fn metric_scalar(kind: MetricKind, t: &ExecProbe) -> f64 {
    match kind {
        MetricKind::QueueDepth => t.queue_depth as f64,
        MetricKind::JobsAdmitted => t.jobs_admitted as f64,
        MetricKind::JobsCompleted => t.jobs_completed as f64,
        MetricKind::TasksCompleted => t.tasks_completed as f64,
        MetricKind::Steals => t.steals as f64,
        MetricKind::FailedSteals => t.failed_steals as f64,
        MetricKind::Events => t.events as f64,
        MetricKind::Utilization => t.utilization(),
        MetricKind::PttResidual => t.ptt_residual,
        MetricKind::SojournP50 => t.sojourn.quantile(0.5).unwrap_or(0.0),
        MetricKind::SojournP99 => t.sojourn.quantile(0.99).unwrap_or(0.0),
        MetricKind::QueueingP99 => t.queueing.quantile(0.99).unwrap_or(0.0),
    }
}

/// Attribute a node's snapshot-fault counters (`snapshots_sent` /
/// `snapshots_dropped` / `snapshots_delayed`) under its `node{i}.`
/// prefix in the merged extras, so a fault-gated metrics stream is
/// diagnosable per node, not just in aggregate.
fn attribute_extras(node: usize, extras: &ExecExtras, merged: &mut ExecExtras) {
    for key in ["snapshots_sent", "snapshots_dropped", "snapshots_delayed"] {
        if let Some(v) = extras.get(key) {
            merged.bump(&format!("node{node}.{key}"), v);
        }
    }
}

/// Split a combined drain reply `[ACK_OK, jobs, tasks, records…,
/// extras]` into decoded records and extras, cross-checking the header
/// counts against the decoded body (a wire-format regression trips
/// here, not in a silently wrong percentile).
fn decode_drain_ok(p: &[f64]) -> (Vec<JobStats>, ExecExtras) {
    assert!(p.len() >= 3 + wire::EXTRAS_SLOTS, "drain reply misframed");
    let jobs_count = p[1] as usize;
    let tasks_total = p[2] as usize;
    let body = &p[3..];
    let (recs, ext) = body.split_at(body.len() - wire::EXTRAS_SLOTS);
    let recs = wire::decode_jobs(recs);
    assert_eq!(recs.len(), jobs_count, "drain job-count mismatch");
    assert_eq!(
        recs.iter().map(|j| j.tasks).sum::<usize>(),
        tasks_total,
        "drain task-count mismatch"
    );
    (recs, wire::decode_extras(ext))
}

impl<G> Executor for Cluster<G> {
    type Graph = G;

    fn backend(&self) -> &'static str {
        "das-cluster"
    }

    /// Route the job by policy, forward it to its node, and stamp the
    /// acknowledged node-local id into the cluster's route table.
    /// Cluster job ids are dense in submission order across the whole
    /// cluster (rejected jobs consume no id, as on the bare backends).
    /// With recovery enabled a spec copy enters the ledger; a node
    /// death during the placement is absorbed (the stranded jobs of the
    /// dead node requeue first, then this job re-places on a survivor).
    fn submit(&mut self, spec: JobSpec<G>) -> Result<Ticket, ExecError> {
        let keep = self.cloner.map(|c| c(&spec));
        let (node, local) = self.place_anywhere(spec)?;
        let id = JobId(self.next_job);
        self.next_job += 1;
        self.route.insert(
            id.0,
            NodeRoute {
                node,
                local,
                started: false,
            },
        );
        if let Some(spec) = keep {
            self.retained.insert(
                id.0,
                Retained {
                    spec,
                    retried: false,
                },
            );
        }
        Ok(Ticket::new(self.exec_session, id))
    }

    /// Route a whole batch, then send **one wire message per node with
    /// a non-empty sub-batch** instead of one per job — the per-message
    /// fixed costs (doorbell, ack round-trip) amortise over the batch.
    ///
    /// Routing is bit-identical to an equivalent loop of `submit`: each
    /// job is picked in batch order against a load view updated
    /// *locally* after every assignment — exactly the `+1` the node's
    /// synchronous `T_LOAD` report would have applied between two
    /// looped submissions (nothing else moves the count between the
    /// two). Cluster ids are dense in batch order.
    ///
    /// On a shed decision mid-batch nothing is admitted (local view
    /// rolled back, error returned). A node *rejecting* its sub-batch
    /// admits nothing on that node (backend batches are atomic on
    /// validation), but the sub-batches of other nodes remain admitted
    /// and surface in the next drain — their tickets are lost with the
    /// error, exactly like a failed batch on the bare backends. A node
    /// *dying* on its sub-batch is recovered: with the ledger on, its
    /// positions re-place onto survivors (`jobs_requeued`).
    fn submit_many(&mut self, specs: Vec<JobSpec<G>>) -> Result<Vec<Ticket>, ExecError> {
        if specs.is_empty() {
            return Err(ExecError::Rejected("empty batch".into()));
        }
        self.refresh_loads();
        let total = specs.len();
        // Phase 1: route every job against the locally-updated view.
        let mut assignment = Vec::with_capacity(total);
        for _ in &specs {
            match route::pick(
                self.policy,
                &self.loads,
                &self.limits,
                &self.alive,
                &mut self.rr,
                &mut self.rng,
            ) {
                Some(node) => {
                    self.loads[node] += 1.0;
                    assignment.push(node);
                }
                None => {
                    let err = self.no_pick_error();
                    for &node in &assignment {
                        self.loads[node] -= 1.0;
                    }
                    return Err(err);
                }
            }
        }
        // Ledger copies, one per position, while recovery is on.
        let mut kept: Vec<Option<JobSpec<G>>> = match self.cloner {
            Some(c) => specs.iter().map(|s| Some(c(s))).collect(),
            None => (0..total).map(|_| None).collect(),
        };
        // Phase 2: per-node sub-batches (batch order within each node),
        // one side-channel transfer per job, ONE control message per
        // node.
        let n = self.nodes.len();
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (pos, &node) in assignment.iter().enumerate() {
            groups[node].push(pos);
        }
        let mut slots: Vec<Option<JobSpec<G>>> = specs.into_iter().map(Some).collect();
        let mut doorbelled = vec![false; n];
        let mut died: Vec<usize> = Vec::new();
        let mut first_err: Option<ExecError> = None;
        for (node, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let fed = group.iter().all(|&pos| {
                let spec = slots[pos].take().expect("each slot moves once");
                self.nodes[node].tx.send(spec).is_ok()
            });
            if !fed {
                // Dead agent discovered at the side channel: recover
                // the whole sub-batch below.
                died.push(node);
                continue;
            }
            self.nodes[node]
                .ep
                .send(NODE, T_CTRL, vec![OP_SUBMIT_MANY, group.len() as f64]);
            doorbelled[node] = true;
        }
        // Phase 3: collect one batch ack per doorbelled node (node
        // order; the agents work concurrently regardless). Deaths are
        // only recorded here — every outstanding ack must be consumed
        // before any recovery traffic, or a requeue's ack would
        // interleave with a pending batch ack on the same link.
        let mut locals: Vec<VecDeque<u64>> = vec![VecDeque::new(); n];
        for node in 0..n {
            if !doorbelled[node] {
                continue;
            }
            match self.rpc_recv(node) {
                Ok(ack) if ack.first() == Some(&ACK_OK) => {
                    let k = ack[1] as usize;
                    debug_assert_eq!(k, groups[node].len());
                    locals[node] = ack[2..2 + k].iter().map(|&v| v as u64).collect();
                }
                Ok(ack) => {
                    let err = wire::decode_err(&ack, node, self.node_error(node));
                    if matches!(err, ExecError::NodeFailed { .. }) {
                        died.push(node);
                    } else {
                        first_err.get_or_insert(err);
                    }
                }
                Err(ExecError::NodeFailed { .. }) => died.push(node),
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        // Phase 3b: repair each death, then re-place its sub-batch
        // positions (batch order) onto survivors from the ledger.
        let mut moved: HashMap<usize, (usize, u64)> = HashMap::new();
        for dead in died {
            self.handle_node_down(dead);
            for &pos in &groups[dead] {
                let replay = kept[pos]
                    .as_ref()
                    .map(|k| (self.cloner.expect("a kept spec implies a cloner"))(k));
                let Some(spec) = replay else {
                    first_err.get_or_insert(ExecError::NodeFailed { node: dead });
                    continue;
                };
                match self.place_anywhere(spec) {
                    Ok(placed) => {
                        moved.insert(pos, placed);
                        self.exec_extras.bump("jobs_requeued", 1.0);
                    }
                    Err(e) => {
                        kept[pos] = None;
                        first_err.get_or_insert(e);
                    }
                }
            }
        }
        // Phase 4: cluster ids, dense in batch order over the admitted
        // jobs (a rejected sub-batch consumes no ids).
        let mut tickets = Vec::with_capacity(total);
        for (pos, &node) in assignment.iter().enumerate() {
            let placed = moved
                .remove(&pos)
                .or_else(|| locals[node].pop_front().map(|local| (node, local)));
            let Some((mut node, mut local)) = placed else {
                continue;
            };
            let id = JobId(self.next_job);
            self.next_job += 1;
            if !self.alive[node] {
                // The node died after admitting this position (during
                // another position's recovery): re-place from the
                // ledger, or record the loss.
                let replay = kept[pos]
                    .as_ref()
                    .map(|k| (self.cloner.expect("a kept spec implies a cloner"))(k));
                match replay.map(|s| self.place_anywhere(s)) {
                    Some(Ok(placed)) => {
                        (node, local) = placed;
                        self.exec_extras.bump("jobs_requeued", 1.0);
                    }
                    Some(Err(_)) | None => {
                        self.lost.insert(id.0, node);
                        self.exec_extras.bump("jobs_lost", 1.0);
                        tickets.push(Ticket::new(self.exec_session, id));
                        continue;
                    }
                }
            }
            self.route.insert(
                id.0,
                NodeRoute {
                    node,
                    local,
                    started: false,
                },
            );
            if let Some(spec) = kept[pos].take() {
                self.retained.insert(
                    id.0,
                    Retained {
                        spec,
                        retried: false,
                    },
                );
            }
            tickets.push(Ticket::new(self.exec_session, id));
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(tickets),
        }
    }

    /// Redeem a ticket against the node its job was routed to; the
    /// returned record carries the cluster job id and consumes the
    /// job's drain record (node-side and in the route table). A node
    /// death during the wait repairs the cluster and retries the wait
    /// wherever the job landed; a job the failure plane could not save
    /// redeems as [`ExecError::NodeFailed`].
    fn wait(&mut self, ticket: Ticket) -> Result<JobStats, ExecError> {
        let id = ticket.job();
        if ticket.session() != self.exec_session {
            return Err(ExecError::UnknownTicket(id));
        }
        loop {
            if let Some(node) = self.lost.remove(&id.0) {
                return Err(ExecError::NodeFailed { node });
            }
            let Some(&NodeRoute { node, local, .. }) = self.route.get(&id.0) else {
                return Err(ExecError::UnknownTicket(id));
            };
            self.mark_started(node);
            self.nodes[node]
                .ep
                .send(NODE, T_CTRL, vec![OP_WAIT, local as f64]);
            match self.rpc_recv(node) {
                Ok(ack) if ack.first() == Some(&ACK_OK) => {
                    self.route.remove(&id.0);
                    self.retained.remove(&id.0);
                    let mut stats = wire::decode_jobs(&ack[1..]).pop().ok_or_else(|| {
                        ExecError::Failed(format!("node {node}: empty wait reply"))
                    })?;
                    stats.id = id;
                    return Ok(stats);
                }
                Ok(ack) => {
                    let err = wire::decode_err(&ack, node, self.node_error(node));
                    match err {
                        ExecError::NodeFailed { node: dead } => {
                            // Repair and retry: the waited job either
                            // re-placed (loop waits on its new node) or
                            // is now in the lost set (loop returns the
                            // typed failure).
                            self.handle_node_down(dead);
                        }
                        // Remap the node-local id in the error onto the
                        // cluster id.
                        ExecError::UnknownTicket(_) => {
                            self.route.remove(&id.0);
                            self.retained.remove(&id.0);
                            return Err(ExecError::UnknownTicket(id));
                        }
                        other => {
                            self.route.remove(&id.0);
                            self.retained.remove(&id.0);
                            return Err(other);
                        }
                    }
                }
                Err(ExecError::NodeFailed { .. }) => {
                    self.handle_node_down(node);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Drain every live node and merge the per-node results. Each node
    /// answers with one combined reply whose header cross-checks the
    /// decoded records. A node death mid-drain requeues its stranded
    /// jobs onto survivors and triggers another round, so the stream
    /// still completes (deaths are handled only *after* a round's acks
    /// are all consumed — recovery traffic must not interleave with
    /// pending drain acks). A missing reply within the RPC deadline is
    /// a typed [`ExecError::Timeout`], never a hang — the fix for the
    /// forever-blocking drain of the collective design. On a node
    /// *error* (not death) the whole drain fails and the outstanding
    /// jobs of the failed batch are lost (mirroring the bare
    /// simulator's batch-failure semantics).
    fn drain(&mut self) -> Result<StreamStats, ExecError> {
        let mut jobs = std::mem::take(&mut self.banked_jobs);
        let mut merged = std::mem::take(&mut self.banked_extras);
        let no_discard = HashSet::new();
        let mut failures: Vec<usize> = Vec::new();
        let mut hard_err: Option<ExecError> = None;
        loop {
            let targets: Vec<usize> = (0..self.nodes.len()).filter(|&i| self.alive[i]).collect();
            if targets.is_empty() {
                break;
            }
            for &node in &targets {
                self.mark_started(node);
                self.nodes[node].ep.send(NODE, T_CTRL, vec![OP_DRAIN]);
            }
            let mut died: Vec<usize> = Vec::new();
            for &node in &targets {
                match self.rpc_recv(node) {
                    Ok(p) if p.first() == Some(&ACK_OK) => {
                        let (recs, extras) = decode_drain_ok(&p);
                        self.fold_node_records(
                            node,
                            recs,
                            extras,
                            &no_discard,
                            &mut jobs,
                            &mut merged,
                        );
                    }
                    Ok(p) => {
                        let err = wire::decode_err(&p, node, self.node_error(node));
                        if matches!(err, ExecError::NodeFailed { .. }) {
                            died.push(node);
                        } else {
                            failures.push(node);
                        }
                    }
                    Err(ExecError::NodeFailed { .. }) => died.push(node),
                    Err(e) => {
                        hard_err.get_or_insert(e);
                    }
                }
            }
            self.refresh_loads();
            if died.is_empty() {
                break;
            }
            // Repair after the whole round's acks are in; the requeued
            // jobs land on survivors, which the next round drains.
            for node in died {
                self.handle_node_down(node);
            }
        }
        if let Some(e) = hard_err {
            // A silent node leaves the drained state unknowable: drop
            // this cycle's bookkeeping and surface the typed error.
            self.route.clear();
            self.retained.clear();
            return Err(e);
        }
        if !failures.is_empty() {
            let why = failures
                .iter()
                .map(|&i| self.node_error(i))
                .collect::<Vec<_>>()
                .join("; ");
            self.route.clear();
            self.retained.clear();
            return Err(ExecError::Failed(why));
        }
        // Route entries left over after a full drain belong to jobs an
        // *earlier failed batch* lost (a `wait` that returned `Failed`
        // loses its node's whole pending batch, but the dispatcher only
        // learns about the waited job): drop them, exactly as the bare
        // simulator forgets a failed batch — their tickets redeem as
        // `UnknownTicket` from here on. (Jobs the failure plane
        // recorded as lost stay in the lost set and keep redeeming as
        // `NodeFailed`.)
        self.route.clear();
        self.retained.clear();
        self.exec_extras.absorb(merged);
        // The cluster size is a fact, not a counter: write it with set
        // semantics *after* the absorb so repeated drains between two
        // `take_extras` calls do not sum it into nonsense.
        self.exec_extras.set("nodes", self.live_nodes() as f64);
        self.flatten_metrics();
        Ok(StreamStats::from_jobs(jobs))
    }

    fn take_extras(&mut self) -> ExecExtras {
        std::mem::take(&mut self.exec_extras)
    }

    /// The merged cluster probe: the bin-wise sum of every node's
    /// latest snapshot (order-insensitive and exact — the sketches are
    /// integer counts). `None` until any node has pushed a snapshot,
    /// so a metrics-off cluster reports exactly like a metrics-off
    /// backend.
    fn metrics_probe(&mut self) -> Option<ExecProbe> {
        let report = self.metrics_report();
        (!report.nodes.is_empty()).then(|| report.totals())
    }
}

impl<G> Drop for Cluster<G> {
    fn drop(&mut self) {
        for node in 0..self.nodes.len() {
            if self.alive[node] {
                self.nodes[node].ep.send(NODE, T_CTRL, vec![OP_SHUTDOWN]);
            }
        }
        for slot in &mut self.nodes {
            if let Some(agent) = slot.agent.take() {
                let _ = agent.join();
            }
        }
    }
}

/// Spawn one node: a private 2-rank link, the spec side channel, and
/// the agent thread. The thread body runs under `catch_unwind`: on a
/// panic (a scheduled kill, or an agent bug) the wrapper records the
/// panic message, publishes the down flag — `Release`, paired with the
/// dispatcher's `Acquire` in `rpc_recv` — and sends `ERR_NODE_FAILED`
/// as its last frame, so a dispatcher blocked on this command's ack
/// observes the death deterministically instead of timing out.
fn spawn_node<E>(
    i: usize,
    exec: E,
    plane: FaultPlane,
    metrics: Option<MetricsConfig>,
) -> NodeSlot<E::Graph>
where
    E: Executor + Send + 'static,
    E::Graph: Send + 'static,
{
    let comm = Communicator::new(2);
    let agent_ep = comm.endpoint(NODE);
    let last_frame_ep = agent_ep.clone();
    let (tx, rx) = std::sync::mpsc::channel();
    let errs = Arc::new(Mutex::new(String::new()));
    let down = Arc::new(AtomicBool::new(false));
    let errs_agent = Arc::clone(&errs);
    let down_agent = Arc::clone(&down);
    let agent = std::thread::Builder::new()
        .name(format!("das-cluster-node-{i}"))
        .spawn(move || {
            let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                node_agent(i, exec, agent_ep, rx, &errs_agent, plane, metrics);
            }));
            if let Err(payload) = run {
                *errs_agent.lock() = panic_text(payload.as_ref());
                down_agent.store(true, Ordering::Release);
                last_frame_ep.send(
                    DISPATCHER,
                    T_ACK,
                    vec![wire::ACK_ERR, wire::ERR_NODE_FAILED, i as f64],
                );
            }
        })
        .expect("spawn cluster node agent");
    NodeSlot {
        tx,
        errs,
        ep: comm.endpoint(DISPATCHER),
        down,
        agent: Some(agent),
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "node agent panicked".into()
    }
}

/// Run one executor-contract operation on the node agent, translating
/// errors (and executor panics — a runtime node's `wait` re-raises task
/// body panics) into acknowledgement payloads, with the human-readable
/// message left in the in-process side channel.
fn run_op<T>(errs: &Mutex<String>, f: impl FnOnce() -> Result<T, ExecError>) -> Result<T, Payload> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(Ok(v)) => {
            // A successful op clears the slot: drain-failure diagnostics
            // must not drag in long-resolved errors of healthy nodes.
            errs.lock().clear();
            Ok(v)
        }
        Ok(Err(e)) => {
            *errs.lock() = e.to_string();
            Err(wire::encode_err(&e))
        }
        Err(_) => {
            *errs.lock() = "node executor panicked".into();
            Err(vec![wire::ACK_ERR, wire::ERR_FAILED])
        }
    }
}

/// The agent's snapshot-cadence state while its session has metrics
/// enabled: the sequence counter, admissions since the last snapshot,
/// the last frame actually sent (what a `DelayLoadReports` fault
/// re-sends), and the fault-attribution counters since the last drain.
struct SnapState {
    cfg: MetricsConfig,
    seq: u64,
    since: u64,
    last_frame: Payload,
    sent: f64,
    dropped: f64,
    delayed: f64,
}

impl SnapState {
    fn new(cfg: MetricsConfig) -> Self {
        SnapState {
            cfg,
            seq: 0,
            since: 0,
            last_frame: Payload::new(),
            sent: 0.0,
            dropped: 0.0,
            delayed: 0.0,
        }
    }

    /// Count `admitted` jobs toward the cadence; `true` when a
    /// snapshot is due.
    fn admitted(&mut self, admitted: u64) -> bool {
        self.since += admitted;
        self.since >= self.cfg.snapshot_every
    }

    /// Stamp the attribution counters onto the drain-bound extras and
    /// reset them — each drain reports the delta since the previous
    /// one, so the dispatcher's per-node bumps never double-count.
    fn stamp_attribution(&mut self, extras: &mut ExecExtras) {
        for (key, v) in [
            ("snapshots_sent", &mut self.sent),
            ("snapshots_dropped", &mut self.dropped),
            ("snapshots_delayed", &mut self.delayed),
        ] {
            if *v != 0.0 {
                extras.bump(key, *v);
                *v = 0.0;
            }
        }
    }
}

/// Push this node's state — an optional metrics snapshot, then the
/// load report — as the fault plane allows: a `Slow` fault inflates
/// the reported load (steering the policies away, the deterministic
/// stand-in for a degraded node), `DropLoadReports` withholds the
/// pair, `DelayLoadReports` re-sends the previous (stale) pair. The
/// snapshot and the load report share **one** drop/delay decision
/// (the same tokens are consumed whether or not metrics are on, so
/// fault schedules reproduce identically either way), and the
/// snapshot goes first — the dispatcher's keep-latest reads then
/// never see a load value fresher than the snapshot beside it.
fn report_state(
    ep: &Endpoint,
    plane: &mut FaultPlane,
    last: &mut f64,
    outstanding: f64,
    snapshot: Option<(&mut SnapState, NodeSnapshot)>,
) {
    let value = outstanding * plane.slow_factor();
    let dropped = plane.drop_load_report();
    let delayed = !dropped && plane.delay_load_report();
    if let Some((state, snap)) = snapshot {
        if dropped {
            state.dropped += 1.0;
        } else if delayed {
            state.delayed += 1.0;
            if !state.last_frame.is_empty() {
                ep.send(DISPATCHER, T_METRICS, state.last_frame.clone());
            }
        } else {
            let frame = wire::encode_snapshot(&snap);
            state.sent += 1.0;
            state.last_frame = frame.clone();
            ep.send(DISPATCHER, T_METRICS, frame);
        }
    }
    if dropped {
        return;
    }
    if delayed {
        ep.send(DISPATCHER, T_LOAD, vec![*last]);
        return;
    }
    *last = value;
    ep.send(DISPATCHER, T_LOAD, vec![value]);
}

/// Send a command acknowledgement, unless a `DropAcks` fault withholds
/// it (the dispatcher then surfaces a typed timeout).
fn send_ack(ep: &Endpoint, plane: &mut FaultPlane, reply: Payload) {
    if plane.drop_ack() {
        return;
    }
    ep.send(DISPATCHER, T_ACK, reply);
}

/// Build the node's metrics snapshot when one is due: `force` (drain
/// epochs) or the cadence reaching `cfg.snapshot_every` admitted jobs
/// — both logical triggers, never wall-clock. Returns the pair
/// [`report_state`] consumes; `None` while metrics are off or the
/// cadence has not elapsed. The executor's probe is cumulative, so a
/// snapshot is a read, not a drain; a backend without metrics state
/// contributes the all-zero probe.
fn snapshot_if_due<'a, E: Executor>(
    node: usize,
    exec: &mut E,
    state: &'a mut Option<SnapState>,
    admitted: u64,
    force: bool,
) -> Option<(&'a mut SnapState, NodeSnapshot)> {
    let s = state.as_mut()?;
    let due = s.admitted(admitted);
    if !(due || force) {
        return None;
    }
    let snap = NodeSnapshot {
        node: node as u64,
        seq: s.seq,
        probe: exec.metrics_probe().unwrap_or_default(),
    };
    s.seq += 1;
    s.since = 0;
    Some((s, snap))
}

/// The node agent loop: owns this node's executor, serves dispatcher
/// commands, pushes a load report (and, when the session enabled
/// metrics, a cadence-due snapshot) before every acknowledgement, and
/// answers `drain` with one combined records+extras reply. Node-local
/// tickets live (and die) here. The agent consults its [`FaultPlane`]
/// at every admission and every outgoing frame — all triggers are
/// logical (counts, not clocks), so injected faults reproduce
/// bit-exactly.
fn node_agent<E: Executor>(
    node: usize,
    mut exec: E,
    ep: Endpoint,
    inbox: Receiver<JobSpec<E::Graph>>,
    errs: &Mutex<String>,
    mut plane: FaultPlane,
    metrics: Option<MetricsConfig>,
) {
    let mut tickets: HashMap<u64, Ticket> = HashMap::new();
    let mut outstanding: f64 = 0.0;
    let mut last_load: f64 = 0.0;
    let mut snap_state: Option<SnapState> = metrics.map(SnapState::new);
    loop {
        // block-ok: the agent's idle state is "parked on the control
        // link"; `Cluster::drop` always sends OP_SHUTDOWN as its last
        // frame, so this recv is bounded by dispatcher lifetime.
        let cmd = ep.recv(DISPATCHER, T_CTRL);
        let op = cmd.first().copied().unwrap_or(OP_SHUTDOWN);
        if op == OP_SHUTDOWN {
            return;
        } else if op == OP_SUBMIT {
            // The graph arrived on the side channel before the doorbell.
            // block-ok: the dispatcher queues the spec *before* sending
            // the OP_SUBMIT doorbell, so this recv can only block until
            // that already-sent spec lands; a dropped sender returns
            // Err and the agent exits.
            let Ok(spec) = inbox.recv() else { return };
            if plane.on_admit(1) {
                // fault-ok: the scheduled Kill fault takes this agent
                // down by design — the spawn wrapper catches the panic,
                // publishes the down flag and sends the ERR_NODE_FAILED
                // frame the blocked dispatcher is waiting on.
                panic!(
                    "fault plane: killed after {} admitted jobs",
                    plane.admitted()
                );
            }
            let mut admitted_now = 0u64;
            let reply = match run_op(errs, || exec.submit(spec)) {
                Ok(ticket) => {
                    let local = ticket.job().0;
                    tickets.insert(local, ticket);
                    outstanding += 1.0;
                    admitted_now = 1;
                    vec![ACK_OK, local as f64]
                }
                Err(p) => p,
            };
            let snap = snapshot_if_due(node, &mut exec, &mut snap_state, admitted_now, false);
            report_state(&ep, &mut plane, &mut last_load, outstanding, snap);
            send_ack(&ep, &mut plane, reply);
        } else if op == OP_SUBMIT_MANY {
            // One doorbell for a k-job sub-batch; the specs arrived on
            // the side channel in batch order.
            let k = cmd.get(1).copied().unwrap_or(0.0) as usize;
            let mut specs = Vec::with_capacity(k);
            for _ in 0..k {
                // block-ok: all k specs are queued before the one
                // OP_SUBMIT_MANY doorbell; see the OP_SUBMIT recv.
                let Ok(spec) = inbox.recv() else { return };
                specs.push(spec);
            }
            if plane.on_admit(k as u64) {
                // fault-ok: scheduled Kill fault, caught by the spawn
                // wrapper which reports ERR_NODE_FAILED — see OP_SUBMIT.
                panic!(
                    "fault plane: killed after {} admitted jobs",
                    plane.admitted()
                );
            }
            // The backend batch is atomic on validation: on error the
            // node admits nothing and the count is untouched.
            let mut admitted_now = 0u64;
            let reply = match run_op(errs, || exec.submit_many(specs)) {
                Ok(batch) => {
                    let mut p = Vec::with_capacity(2 + batch.len());
                    p.push(ACK_OK);
                    p.push(batch.len() as f64);
                    admitted_now = batch.len() as u64;
                    for ticket in batch {
                        let local = ticket.job().0;
                        p.push(local as f64);
                        tickets.insert(local, ticket);
                        outstanding += 1.0;
                    }
                    p
                }
                Err(p) => p,
            };
            let snap = snapshot_if_due(node, &mut exec, &mut snap_state, admitted_now, false);
            report_state(&ep, &mut plane, &mut last_load, outstanding, snap);
            send_ack(&ep, &mut plane, reply);
        } else if op == OP_WAIT {
            // A missing id slot must take the error path, never alias a
            // real id (note `-1.0 as u64` would saturate to 0, a valid
            // node-local job id).
            let reply = match cmd
                .get(1)
                .map(|&v| v as u64)
                .and_then(|local| tickets.remove(&local))
            {
                None => vec![
                    wire::ACK_ERR,
                    ERR_UNKNOWN_TICKET,
                    cmd.get(1).copied().unwrap_or(0.0),
                ],
                Some(ticket) => {
                    // Only the waited job leaves the count, even when the
                    // wait fails. On a batch backend a `Failed` wait lost
                    // the node's whole pending batch, so until the next
                    // drain resets the count this node reports phantom
                    // backlog — deliberate: the remaining tickets must
                    // stay redeemable (on a pool backend the siblings of
                    // a panicked job are alive and genuinely outstanding,
                    // so resyncing here would corrupt *their* waits), and
                    // steering new jobs away from a node that just failed
                    // a batch is the right routing bias anyway.
                    outstanding -= 1.0;
                    match run_op(errs, || exec.wait(ticket)) {
                        Ok(stats) => {
                            let mut p = vec![ACK_OK];
                            wire::push_job(&mut p, &stats);
                            p
                        }
                        Err(p) => p,
                    }
                }
            };
            report_state(&ep, &mut plane, &mut last_load, outstanding, None);
            send_ack(&ep, &mut plane, reply);
        } else if op == OP_DRAIN {
            let drained = run_op(errs, || exec.drain());
            tickets.clear();
            outstanding = 0.0;
            // A drain epoch always snapshots (post-drain, so the probe
            // includes everything the drain completed).
            let snap = snapshot_if_due(node, &mut exec, &mut snap_state, 0, true);
            report_state(&ep, &mut plane, &mut last_load, outstanding, snap);
            // Extras leave the executor either way (a failed drain
            // discards them, exactly as the collective design did).
            let mut extras = exec.take_extras();
            if let Some(s) = &mut snap_state {
                s.stamp_attribution(&mut extras);
            }
            let reply = match drained {
                Ok(stats) => {
                    let mut p = Vec::with_capacity(
                        3 + stats.jobs.len() * wire::JOB_SLOTS + wire::EXTRAS_SLOTS,
                    );
                    p.push(ACK_OK);
                    p.push(stats.jobs.len() as f64);
                    p.push(stats.tasks as f64);
                    p.extend(wire::encode_jobs(&stats.jobs));
                    p.extend(wire::encode_extras(&extras));
                    p
                }
                Err(p) => p,
            };
            send_ack(&ep, &mut plane, reply);
        } else if op == OP_DRAIN_SUMMARY {
            let drained = run_op(errs, || exec.drain());
            tickets.clear();
            outstanding = 0.0;
            let snap = snapshot_if_due(node, &mut exec, &mut snap_state, 0, true);
            // The reply carries the post-drain snapshot outright (on
            // the ack channel, so only `DropAcks` gates it); the
            // fault-gated T_METRICS copy below shares it.
            let reply_snap =
                snap.as_ref()
                    .map(|(_, s)| s.clone())
                    .unwrap_or_else(|| NodeSnapshot {
                        node: node as u64,
                        seq: 0,
                        probe: exec.metrics_probe().unwrap_or_default(),
                    });
            report_state(&ep, &mut plane, &mut last_load, outstanding, snap);
            let mut extras = exec.take_extras();
            if let Some(s) = &mut snap_state {
                s.stamp_attribution(&mut extras);
            }
            let reply = match drained {
                Ok(stats) => {
                    // Ship the stream endpoints, not a pre-folded span:
                    // the dispatcher computes the global span across
                    // nodes exactly as a merged-record drain would.
                    let t0 = stats
                        .jobs
                        .iter()
                        .map(|j| j.arrival)
                        .fold(f64::INFINITY, f64::min);
                    let t1 = stats.jobs.iter().map(|j| j.completed).fold(0.0, f64::max);
                    wire::encode_summary_ok(
                        stats.jobs.len() as u64,
                        stats.tasks as u64,
                        t0,
                        t1,
                        &extras,
                        &reply_snap,
                    )
                }
                Err(p) => p,
            };
            send_ack(&ep, &mut plane, reply);
        } else if op == OP_PULL_TRACE {
            // A pull is not an admission edge and changes no
            // outstanding count: no load report rides with it.
            let spans = exec.take_trace_spans();
            send_ack(&ep, &mut plane, wire::encode_trace_ok(&spans));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_core::{FaultSchedule, Policy, TaskTypeId};
    use das_dag::generators;
    use das_topology::Topology;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn base_session(seed: u64) -> SessionBuilder {
        SessionBuilder::new(Arc::new(Topology::tx2()), Policy::DamC).seed(seed)
    }

    fn chain_job(j: usize) -> JobSpec<Dag> {
        JobSpec::new(generators::chain(TaskTypeId(0), 4)).at(j as f64 * 1e-3)
    }

    #[test]
    fn round_robin_attributes_jobs_evenly() {
        let mut cluster = ClusterBuilder::new(base_session(1), 3)
            .route(RoutePolicy::RoundRobin)
            .build_sim();
        for j in 0..6 {
            Executor::submit(&mut cluster, chain_job(j)).unwrap();
        }
        let stats = cluster.drain().unwrap();
        assert_eq!(stats.jobs.len(), 6);
        assert_eq!(stats.tasks, 24);
        // Cluster ids are dense in submission order.
        let ids: Vec<u64> = stats.jobs.iter().map(|j| j.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
        let extras = cluster.take_extras();
        assert_eq!(extras.get("nodes"), Some(3.0));
        for node in 0..3 {
            assert_eq!(
                extras.get(&format!("node{node}.jobs")),
                Some(2.0),
                "round-robin must spread 6 jobs as 2+2+2"
            );
        }
        assert!(extras.events.unwrap() > 0, "sim nodes report events");
    }

    #[test]
    fn least_outstanding_balances_an_unwaited_stream() {
        let mut cluster = ClusterBuilder::new(base_session(2), 4)
            .route(RoutePolicy::LeastOutstanding)
            .build_sim();
        for j in 0..12 {
            Executor::submit(&mut cluster, chain_job(j)).unwrap();
        }
        cluster.drain().unwrap();
        let extras = cluster.take_extras();
        for node in 0..4 {
            assert_eq!(
                extras.get(&format!("node{node}.jobs")),
                Some(3.0),
                "synchronous load reports make least-outstanding exact"
            );
        }
    }

    #[test]
    fn wait_consumes_and_stale_or_foreign_tickets_are_rejected() {
        let mut cluster = ClusterBuilder::new(base_session(3), 2).build_sim();
        let t0 = Executor::submit(&mut cluster, chain_job(0)).unwrap();
        let t1 = Executor::submit(&mut cluster, chain_job(1)).unwrap();
        let (id0, session) = (t0.job(), t0.session());
        assert!(cluster.node_of(&t0).is_some());
        let s0 = Executor::wait(&mut cluster, t0).unwrap();
        assert_eq!(s0.id, id0);
        assert_eq!(s0.tasks, 4);
        // Only the un-waited job remains for drain, under its cluster id.
        let rest = cluster.drain().unwrap();
        assert_eq!(rest.jobs.len(), 1);
        assert_eq!(rest.jobs[0].id, t1.job());
        // A consumed id is unknown afterwards…
        let stale = Ticket::new(session, id0);
        assert_eq!(
            Executor::wait(&mut cluster, stale),
            Err(ExecError::UnknownTicket(id0))
        );
        // …and a ticket from a different executor session is rejected.
        let mut other = ClusterBuilder::new(base_session(3), 2).build_sim();
        let foreign = Executor::submit(&mut other, chain_job(0)).unwrap();
        assert_eq!(
            Executor::wait(&mut cluster, foreign),
            Err(ExecError::UnknownTicket(JobId(0)))
        );
    }

    #[test]
    fn rejections_surface_with_the_node_detail_and_consume_no_id() {
        let mut cluster = ClusterBuilder::new(base_session(4), 2).build_sim();
        let err = Executor::submit(&mut cluster, JobSpec::new(Dag::new("empty"))).unwrap_err();
        match err {
            ExecError::Rejected(why) => assert!(why.contains("node"), "{why}"),
            other => panic!("expected Rejected, got {other:?}"),
        }
        // The failed submission consumed no cluster id.
        let ok = Executor::submit(&mut cluster, chain_job(0)).unwrap();
        assert_eq!(ok.job(), JobId(0));
        assert_eq!(Executor::wait(&mut cluster, ok).unwrap().tasks, 4);
    }

    #[test]
    fn runtime_cluster_executes_real_task_bodies() {
        let sessions = (0..2)
            .map(|i| SessionBuilder::new(Arc::new(Topology::symmetric(2)), Policy::Rws).seed(i))
            .collect();
        let mut cluster = ClusterBuilder::from_sessions(sessions)
            .route(RoutePolicy::RoundRobin)
            .build_runtime();
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 {
            let mut g = TaskGraph::new("job");
            let h = Arc::clone(&hits);
            let root = g.add(
                TaskTypeId(0),
                das_core::Priority::Low,
                move |ctx: &das_runtime::TaskCtx| {
                    if ctx.rank == 0 {
                        h.fetch_add(1, Ordering::Relaxed); // relaxed-ok: test counter; wait() joins every task before the read
                    }
                },
            );
            let h = Arc::clone(&hits);
            let leaf = g.add(
                TaskTypeId(0),
                das_core::Priority::High,
                move |ctx: &das_runtime::TaskCtx| {
                    if ctx.rank == 0 {
                        h.fetch_add(1, Ordering::Relaxed); // relaxed-ok: test counter; wait() joins every task before the read
                    }
                },
            );
            g.add_edge(root, leaf);
            Executor::submit(&mut cluster, JobSpec::new(g)).unwrap();
        }
        let stats = cluster.drain().unwrap();
        assert_eq!(stats.jobs.len(), 4);
        assert_eq!(stats.tasks, 8);
        assert_eq!(hits.load(Ordering::Relaxed), 8); // relaxed-ok: read after wait(); job completion orders the counters
        let extras = cluster.take_extras();
        assert_eq!(extras.events, None, "runtime nodes report no sim events");
        assert!(extras.steals.is_some());
    }

    #[test]
    fn repeated_drains_keep_nodes_a_fact_and_counters_counting() {
        // "nodes" is the cluster size, not a counter: two drain cycles
        // between take_extras calls must not sum it to 2N — while the
        // genuine counters (per-node job attribution) do accumulate.
        let mut cluster = ClusterBuilder::new(base_session(8), 3)
            .route(RoutePolicy::RoundRobin)
            .build_sim();
        for round in 0..2 {
            for j in 0..6 {
                Executor::submit(&mut cluster, chain_job(round * 6 + j)).unwrap();
            }
            cluster.drain().unwrap();
        }
        let extras = cluster.take_extras();
        assert_eq!(extras.get("nodes"), Some(3.0), "size, not a sum");
        for node in 0..3 {
            assert_eq!(
                extras.get(&format!("node{node}.jobs")),
                Some(4.0),
                "attribution accumulates across drains"
            );
        }
    }

    #[test]
    fn failed_node_batch_loses_its_jobs_without_poisoning_the_cluster() {
        // A sim node whose batch trips the event budget: the waited job
        // surfaces `Failed`, its lost siblings disappear (UnknownTicket,
        // like the bare simulator's failed batch), and the next drain —
        // which must NOT invent records for the never-reported route
        // entries — returns empty and leaves the cluster serving new
        // jobs. (The recovery ledger is consulted only on node *death*,
        // never on a failed batch.)
        let mut cluster = ClusterBuilder::new(base_session(9), 1).build_with(|_, session| {
            let mut sim = Simulator::from_session(session);
            sim.max_events = 5; // far below any real batch
            sim
        });
        let t0 = Executor::submit(&mut cluster, chain_job(0)).unwrap();
        let t1 = Executor::submit(&mut cluster, chain_job(1)).unwrap();
        assert!(matches!(
            Executor::wait(&mut cluster, t0),
            Err(ExecError::Failed(_))
        ));
        let stats = cluster.drain().expect("drain survives the lost batch");
        assert!(stats.jobs.is_empty(), "failed batch reports no records");
        assert_eq!(
            Executor::wait(&mut cluster, t1),
            Err(ExecError::UnknownTicket(JobId(1))),
            "lost sibling redeems as unknown, exactly like the bare sim"
        );
    }

    #[test]
    fn drain_failure_diagnostics_name_only_the_failing_node() {
        // Node 0 is healthy but once rejected an empty graph; node 1
        // trips its event budget at drain. The drain error must blame
        // node 1 and must not drag in node 0's long-resolved rejection.
        let mut cluster = ClusterBuilder::new(base_session(10), 2)
            .route(RoutePolicy::RoundRobin)
            .build_with(|i, session| {
                let mut sim = Simulator::from_session(session);
                if i == 1 {
                    sim.max_events = 5;
                }
                sim
            });
        // Routed to node 0: rejection sets its error slot…
        assert!(matches!(
            Executor::submit(&mut cluster, JobSpec::new(Dag::new("empty"))),
            Err(ExecError::Rejected(_))
        ));
        // …then two good submissions (node 1, then node 0 — clearing
        // node 0's slot on its successful op).
        Executor::submit(&mut cluster, chain_job(0)).unwrap();
        Executor::submit(&mut cluster, chain_job(1)).unwrap();
        match cluster.drain() {
            Err(ExecError::Failed(why)) => {
                assert!(why.contains("node 1"), "{why}");
                assert!(
                    !why.contains("node 0"),
                    "stale healthy-node error leaked: {why}"
                );
            }
            other => panic!("expected the budget-tripped drain to fail, got {other:?}"),
        }
        // The cluster keeps serving after the failed drain (round-robin
        // sends the first post-drain job back to the still-crippled
        // node 1; the next one lands on healthy node 0 and completes).
        let doomed = Executor::submit(&mut cluster, chain_job(2)).unwrap();
        let ok = Executor::submit(&mut cluster, chain_job(3)).unwrap();
        assert_eq!(Executor::wait(&mut cluster, ok).unwrap().tasks, 4);
        assert!(matches!(
            Executor::wait(&mut cluster, doomed),
            Err(ExecError::Failed(_))
        ));
    }

    #[test]
    fn drop_with_outstanding_jobs_does_not_hang() {
        let mut cluster = ClusterBuilder::new(base_session(5), 2).build_sim();
        for j in 0..3 {
            Executor::submit(&mut cluster, chain_job(j)).unwrap();
        }
        drop(cluster); // pending sim batches are discarded, agents join
    }

    #[test]
    fn po2_routing_is_reproducible_across_identical_clusters() {
        let run = || {
            let mut cluster = ClusterBuilder::new(base_session(6), 4)
                .route(RoutePolicy::PowerOfTwo)
                .route_seed(99)
                .build_sim();
            for j in 0..16 {
                Executor::submit(&mut cluster, chain_job(j)).unwrap();
            }
            cluster.drain().unwrap();
            let extras = cluster.take_extras();
            (0..4)
                .map(|n| extras.get(&format!("node{n}.jobs")).unwrap_or(0.0))
                .collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run());
        assert_eq!(a.iter().sum::<f64>(), 16.0);
    }

    #[test]
    fn seeded_kill_requeues_onto_survivors() {
        // kill(2, 1): node 2 admits one job, then dies at its second
        // admission. The stranded job requeues, the triggering job
        // re-places, and the whole stream completes on nodes 0 and 1.
        let base = base_session(21).fault_schedule(FaultSchedule::new(21).kill(2, 1));
        let mut cluster = ClusterBuilder::new(base, 3)
            .route(RoutePolicy::RoundRobin)
            .build_sim();
        for j in 0..9 {
            Executor::submit(&mut cluster, chain_job(j)).unwrap();
        }
        assert_eq!(cluster.live_nodes(), 2, "node 2 died mid-stream");
        let stats = cluster.drain().unwrap();
        assert_eq!(stats.jobs.len(), 9, "every job completes on survivors");
        let ids: Vec<u64> = stats.jobs.iter().map(|j| j.id.0).collect();
        assert_eq!(ids, (0..9).collect::<Vec<_>>(), "ids stay dense");
        let extras = cluster.take_extras();
        assert_eq!(extras.get("node2.failed"), Some(1.0));
        assert_eq!(extras.get("jobs_requeued"), Some(1.0));
        assert_eq!(extras.get("jobs_lost"), None);
        assert_eq!(extras.get("nodes"), Some(2.0), "live count after the kill");
    }

    #[test]
    fn membership_churn_between_drains() {
        let mut cluster = ClusterBuilder::new(base_session(22), 2)
            .route(RoutePolicy::RoundRobin)
            .build_sim();
        for j in 0..4 {
            Executor::submit(&mut cluster, chain_job(j)).unwrap();
        }
        let added = cluster.add_node(&base_session(22));
        assert_eq!(added, 2);
        assert_eq!(cluster.live_nodes(), 3);
        cluster.remove_node(0).unwrap();
        assert!(!cluster.is_alive(0));
        for j in 4..8 {
            Executor::submit(&mut cluster, chain_job(j)).unwrap();
        }
        let stats = cluster.drain().unwrap();
        assert_eq!(stats.jobs.len(), 8, "no job lost across churn");
        let extras = cluster.take_extras();
        assert_eq!(extras.get("node0.removed"), Some(1.0));
        assert_eq!(
            extras.get("jobs_requeued"),
            Some(2.0),
            "node 0's pending queue moved onto peers"
        );
        assert_eq!(extras.get("nodes"), Some(2.0));
        // Removing a dead slot or the whole fleet is rejected.
        assert!(matches!(
            cluster.remove_node(0),
            Err(ExecError::Rejected(_))
        ));
        cluster.remove_node(1).unwrap();
        assert!(matches!(
            cluster.remove_node(2),
            Err(ExecError::Rejected(_))
        ));
    }

    #[test]
    fn dropped_acks_surface_as_typed_timeout() {
        let base = base_session(23).fault_schedule(FaultSchedule::new(23).drop_acks(0, 1));
        let mut cluster = ClusterBuilder::new(base, 1)
            .rpc_deadline(Duration::from_millis(2))
            .rpc_attempts(2)
            .build_sim();
        let err = Executor::submit(&mut cluster, chain_job(0)).unwrap_err();
        assert!(matches!(err, ExecError::Timeout { .. }), "{err:?}");
        // The node admitted the job but its ack was withheld: the
        // record surfaces at drain as an orphan, not a completion.
        let stats = cluster.drain().unwrap();
        assert!(stats.jobs.is_empty());
        let extras = cluster.take_extras();
        assert_eq!(extras.get("jobs_orphaned"), Some(1.0));
    }

    #[test]
    fn drain_deadline_turns_a_silent_node_into_a_typed_error() {
        // Node 1 swallows its drain ack. The old collective epilogue
        // would block forever; the bounded RPC surfaces ExecError::Timeout.
        let base = base_session(24).fault_schedule(FaultSchedule::new(24).drop_acks(1, 1));
        let mut cluster = ClusterBuilder::new(base, 2)
            .route(RoutePolicy::RoundRobin)
            .rpc_deadline(Duration::from_millis(2))
            .rpc_attempts(2)
            .build_sim();
        Executor::submit(&mut cluster, chain_job(0)).unwrap();
        let err = cluster.drain().unwrap_err();
        assert!(matches!(err, ExecError::Timeout { .. }), "{err:?}");
    }

    #[test]
    fn metrics_snapshots_stream_to_the_dispatcher_and_merge() {
        let base = base_session(31).metrics(MetricsConfig::default().every(2));
        let mut cluster = ClusterBuilder::new(base, 2)
            .route(RoutePolicy::RoundRobin)
            .build_sim();
        for j in 0..6 {
            Executor::submit(&mut cluster, chain_job(j)).unwrap();
        }
        // Cadence (every 2 admissions) has pushed snapshots already,
        // before any drain.
        let report = cluster.metrics_report();
        assert_eq!(report.nodes.len(), 2, "both nodes snapshot by cadence");
        // Each node snapshotted at its 2nd admission (3 jobs each under
        // round-robin), so the freshest pre-drain view totals 4.
        assert_eq!(report.totals().jobs_admitted, 4);
        let stats = cluster.drain().unwrap();
        assert_eq!(stats.jobs.len(), 6);
        // The drain-epoch snapshots carry completions and sketches.
        let totals = cluster.metrics_probe().expect("metrics on");
        assert_eq!(totals.jobs_completed, 6);
        assert_eq!(totals.sojourn.count(), 6);
        // The merged report is flattened into extras: one
        // `metrics.<kind>` value per MetricKind.
        let extras = cluster.take_extras();
        for kind in MetricKind::ALL {
            assert!(
                extras.get(&format!("metrics.{}", kind.name())).is_some(),
                "metrics.{} missing from extras",
                kind.name()
            );
        }
        assert_eq!(extras.get("metrics.jobs_completed"), Some(6.0));
        assert_eq!(extras.get("snapshots_sent"), Some(totals_sent(&extras)));
    }

    /// Sum of the per-node snapshot attribution, which must equal the
    /// cluster-total counter.
    fn totals_sent(extras: &ExecExtras) -> f64 {
        (0..8)
            .filter_map(|i| extras.get(&format!("node{i}.snapshots_sent")))
            .sum()
    }

    #[test]
    fn metrics_off_cluster_exposes_no_metrics_surface() {
        let mut cluster = ClusterBuilder::new(base_session(32), 2)
            .route(RoutePolicy::RoundRobin)
            .build_sim();
        for j in 0..4 {
            Executor::submit(&mut cluster, chain_job(j)).unwrap();
        }
        cluster.drain().unwrap();
        assert!(cluster.metrics_report().nodes.is_empty());
        assert!(cluster.metrics_probe().is_none());
        let extras = cluster.take_extras();
        assert!(
            !extras.values().any(|(k, _)| k.starts_with("metrics.")),
            "metrics-off extras must stay byte-identical to the seed surface"
        );
    }

    #[test]
    fn drain_summary_replaces_records_with_sketches() {
        let seed = 33;
        // Reference: a regular drain of the identical cluster.
        let mut reference =
            ClusterBuilder::new(base_session(seed).metrics(MetricsConfig::default()), 2)
                .route(RoutePolicy::RoundRobin)
                .build_sim();
        for j in 0..10 {
            Executor::submit(&mut reference, chain_job(j)).unwrap();
        }
        let stats = reference.drain().unwrap();

        let mut cluster =
            ClusterBuilder::new(base_session(seed).metrics(MetricsConfig::default()), 2)
                .route(RoutePolicy::RoundRobin)
                .build_sim();
        for j in 0..10 {
            Executor::submit(&mut cluster, chain_job(j)).unwrap();
        }
        let summary = cluster.drain_summary().unwrap();
        assert_eq!(summary.jobs, 10);
        assert_eq!(summary.tasks as usize, stats.tasks);
        assert_eq!(summary.report.nodes.len(), 2);
        // The merged sketch percentile agrees with the exact
        // nearest-rank percentile within one bucket's relative error.
        let totals = summary.report.totals();
        let sketch_p99 = totals.sojourn.quantile(0.99).expect("10 samples");
        let exact_p99 = stats.sojourn_percentile(0.99).expect("10 jobs drained");
        let rel = totals.sojourn.relative_error();
        assert!(
            (sketch_p99 - exact_p99).abs() <= exact_p99 * 2.0 * rel + f64::EPSILON,
            "sketch p99 {sketch_p99} vs exact {exact_p99} (rel {rel})"
        );
        // Tickets retired exactly like a drain: nothing left to wait.
        let t = Executor::submit(&mut cluster, chain_job(10)).unwrap();
        assert!(Executor::wait(&mut cluster, t).is_ok());
    }

    #[test]
    fn cluster_trace_pulls_spans_from_every_node() {
        let base = base_session(34).metrics(MetricsConfig::default().with_trace());
        let mut cluster = ClusterBuilder::new(base, 2)
            .route(RoutePolicy::RoundRobin)
            .build_sim();
        for j in 0..4 {
            Executor::submit(&mut cluster, chain_job(j)).unwrap();
        }
        cluster.drain().unwrap();
        let trace = cluster.collect_trace().unwrap();
        assert_eq!(trace.nodes.len(), 2);
        // 4 chain jobs × 4 tasks, split across the nodes.
        assert!(trace.total_spans() >= 16, "spans: {}", trace.total_spans());
        assert!(trace.nodes.iter().all(|(_, t)| !t.spans.is_empty()));
        let json = trace.to_chrome_json();
        let events = das_sim::validate_chrome_json(&json).expect("valid trace JSON");
        assert_eq!(
            events,
            trace.total_spans() + 2,
            "spans + process_name metadata"
        );
        // The pull drained the node buffers.
        assert_eq!(cluster.collect_trace().unwrap().total_spans(), 0);
    }
}
