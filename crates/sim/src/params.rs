//! Simulator configuration.

use crate::cost::{CostModel, UniformCost};
use das_core::exec::SessionBuilder;
use das_core::{Policy, QueueDiscipline, WeightRatio};
use das_topology::Topology;
use std::sync::Arc;

/// Fixed runtime overheads of the simulated XiTAO-like runtime.
///
/// The struct itself lives in [`das_core::exec`] (so the backend-neutral
/// [`SessionBuilder`] can own the full configuration surface); this is
/// the historical `das_sim::SimParams` path, preserved by re-export.
pub use das_core::exec::SimParams;

/// Everything needed to construct a [`crate::Simulator`].
#[derive(Clone)]
pub struct SimConfig {
    /// Platform shape (shared with the scheduler and environment).
    pub topo: Arc<Topology>,
    /// Scheduling policy under evaluation.
    pub policy: Policy,
    /// PTT weighted-update ratio (Fig. 8 sweep); defaults to the paper's
    /// 1:4.
    pub ratio: WeightRatio,
    /// Task cost model; defaults to [`UniformCost`] with 1 ms tasks.
    pub cost: Arc<dyn CostModel>,
    /// Runtime overheads.
    pub params: SimParams,
    /// Ready-queue ordering rules for every simulated worker; the
    /// paper's XiTAO discipline by default.
    pub discipline: QueueDiscipline,
    /// Seed for the work-stealing RNG; equal seeds give bit-identical
    /// runs.
    pub seed: u64,
}

impl SimConfig {
    /// A config with defaults for everything but platform and policy.
    pub fn new(topo: Arc<Topology>, policy: Policy) -> Self {
        SimConfig {
            topo,
            policy,
            ratio: WeightRatio::PAPER,
            cost: Arc::new(UniformCost::new(1e-3)),
            params: SimParams::default(),
            discipline: QueueDiscipline::XITAO,
            seed: 0x5eed,
        }
    }

    /// Adopt the backend-neutral parts of a [`SessionBuilder`]:
    /// topology, policy, PTT ratio, seed, queue discipline and
    /// simulated overheads. The cost model stays sim-specific — set it
    /// with [`SimConfig::cost`] afterwards (the default is
    /// [`UniformCost`] at 1 ms).
    ///
    /// The session's *scheduler* knobs (sampled search, periodic
    /// exploration, the steal ablation) are **not** part of a
    /// `SimConfig` — they live on the scheduler, which
    /// `Simulator::from_session` / `from_session_with_cost` install
    /// for you. Build through those constructors unless you are
    /// deliberately supplying your own scheduler.
    pub fn from_session(session: &SessionBuilder) -> Self {
        SimConfig::new(Arc::clone(&session.topo), session.policy)
            .ratio(session.ratio)
            .seed(session.seed)
            .params(session.sim_params)
            .discipline(session.discipline)
    }

    /// Set the cost model.
    pub fn cost(mut self, cost: Arc<dyn CostModel>) -> Self {
        self.cost = cost;
        self
    }

    /// Set the PTT update ratio.
    pub fn ratio(mut self, ratio: WeightRatio) -> Self {
        self.ratio = ratio;
        self
    }

    /// Set the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the runtime overheads.
    pub fn params(mut self, params: SimParams) -> Self {
        self.params = params;
        self
    }

    /// Set the ready-queue discipline (ablations).
    pub fn discipline(mut self, discipline: QueueDiscipline) -> Self {
        self.discipline = discipline;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let topo = Arc::new(Topology::tx2());
        let c = SimConfig::new(topo, Policy::Rws)
            .seed(42)
            .ratio(WeightRatio::new(2, 5))
            .discipline(QueueDiscipline::PLAIN_LIFO)
            .params(SimParams {
                wake_latency: 1e-6,
                ..SimParams::default()
            });
        assert_eq!(c.seed, 42);
        assert_eq!(c.ratio, WeightRatio::new(2, 5));
        assert_eq!(c.discipline, QueueDiscipline::PLAIN_LIFO);
        assert_eq!(c.params.wake_latency, 1e-6);
    }

    #[test]
    fn from_session_copies_the_neutral_surface() {
        let topo = Arc::new(Topology::tx2());
        let s = SessionBuilder::new(Arc::clone(&topo), Policy::DamP)
            .seed(7)
            .ratio(WeightRatio::new(1, 2))
            .sim_params(SimParams {
                obs_noise: 3e-5,
                ..SimParams::default()
            });
        let c = SimConfig::from_session(&s);
        assert_eq!(c.policy, Policy::DamP);
        assert_eq!(c.seed, 7);
        assert_eq!(c.ratio, WeightRatio::new(1, 2));
        assert_eq!(c.params.obs_noise, 3e-5);
        assert_eq!(c.discipline, QueueDiscipline::XITAO);
        assert_eq!(c.topo.num_cores(), topo.num_cores());
    }
}
