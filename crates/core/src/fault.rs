//! Deterministic fault plane: seeded fault schedules for the cluster
//! tier.
//!
//! The paper's premise is scheduling under *dynamically asymmetric*
//! conditions — and the sharpest asymmetry is a node that dies, stalls
//! or lies about its load. This module is the configuration half of the
//! failure-domain layer: a [`FaultSchedule`] is a plain, seedable value
//! describing *what goes wrong, where, and when*, attached to a session
//! via [`SessionBuilder::fault_schedule`](crate::exec::SessionBuilder::fault_schedule)
//! and consumed by the cluster dispatcher when it spawns node agents.
//!
//! Determinism is the design constraint, not an afterthought. Every
//! fault fires at a *logical* point (the n-th admitted job, the n-th
//! load report), never at a wall-clock instant, so an all-sim cluster
//! with a given schedule is bit-reproducible run-to-run. The enforcement
//! half — catching the induced panic, surfacing it as a typed
//! `ExecError::NodeFailed`, requeuing orphaned jobs — lives in
//! `das-cluster`; this module knows nothing about wires or threads.
//!
//! ```
//! use das_core::fault::FaultSchedule;
//!
//! // Node 2 dies when asked to admit its 6th job; node 0's first three
//! // load reports are dropped so the dispatcher routes on stale data.
//! let faults = FaultSchedule::new(42)
//!     .kill(2, 5)
//!     .drop_load_reports(0, 3);
//! assert_eq!(faults.events().len(), 2);
//! ```

/// One scheduled fault, bound to a node index of the cluster tier.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultEvent {
    /// The node the fault applies to (cluster node index, not a rank).
    pub node: usize,
    /// What goes wrong.
    pub kind: FaultKind,
}

/// The kinds of fault the plane can inject. All triggers are logical
/// counts — jobs admitted, frames sent — never wall-clock times, so a
/// seeded schedule replays bit-identically.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultKind {
    /// The node-agent dies (panics) when asked to admit the job *after*
    /// its `after_jobs`-th: it admits exactly `after_jobs` jobs and
    /// takes the next admission down with it. The jobs it already
    /// admitted are stranded on the dead node; the dispatcher requeues
    /// or retries them on survivors.
    Kill {
        /// Jobs the node admits before dying.
        after_jobs: u64,
    },
    /// The node's next `count` load-report frames are silently dropped:
    /// the dispatcher keeps routing on its last known (stale) load view
    /// for this node.
    DropLoadReports {
        /// Frames to drop.
        count: u64,
    },
    /// The node's next `count` load-report frames are delayed by one
    /// report each: the dispatcher receives the *previous* report's
    /// value instead of the current one (stale by one step).
    DelayLoadReports {
        /// Frames to delay.
        count: u64,
    },
    /// The node executes its next `count` commands but withholds the
    /// acknowledgement frames, forcing the dispatcher's typed RPC
    /// deadline (`ExecError::Timeout`) to fire instead of blocking
    /// forever.
    DropAcks {
        /// Acknowledgements to withhold.
        count: u64,
    },
    /// The node is marked slow: every load report it sends is inflated
    /// by `factor`, so load-aware routing policies steer work away from
    /// it. The node still executes correctly — this models a thermally
    /// throttled or contended board, not a broken one.
    Slow {
        /// Multiplier applied to the node's reported load (≥ 1.0 means
        /// "looks busier than it is").
        factor: f64,
    },
}

/// A seeded, declarative schedule of faults for one cluster session.
///
/// Built with the chainable methods below and attached to a session via
/// [`SessionBuilder::fault_schedule`](crate::exec::SessionBuilder::fault_schedule).
/// The default value (empty schedule) injects nothing and leaves every
/// execution path bit-identical to a fault-free build.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultSchedule {
    seed: u64,
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty schedule carrying `seed` for the random helpers.
    pub fn new(seed: u64) -> Self {
        FaultSchedule {
            seed,
            events: Vec::new(),
        }
    }

    /// The schedule's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// `true` when the schedule injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Kill `node` after it has admitted `after_jobs` jobs (the next
    /// admission takes the agent down). See [`FaultKind::Kill`].
    pub fn kill(mut self, node: usize, after_jobs: u64) -> Self {
        self.events.push(FaultEvent {
            node,
            kind: FaultKind::Kill { after_jobs },
        });
        self
    }

    /// Kill one node chosen deterministically from the schedule's seed:
    /// node `s % nodes`, after `1 + s' % max_after` admitted jobs. Two
    /// schedules with equal seeds pick identically.
    pub fn kill_random(self, nodes: usize, max_after: u64) -> Self {
        assert!(nodes > 0, "kill_random needs at least one node");
        assert!(max_after > 0, "kill_random needs a positive job bound");
        let a = splitmix64(self.seed);
        let b = splitmix64(a);
        self.kill((a % nodes as u64) as usize, 1 + b % max_after)
    }

    /// Drop `node`'s next `count` load reports. See
    /// [`FaultKind::DropLoadReports`].
    pub fn drop_load_reports(mut self, node: usize, count: u64) -> Self {
        self.events.push(FaultEvent {
            node,
            kind: FaultKind::DropLoadReports { count },
        });
        self
    }

    /// Delay `node`'s next `count` load reports by one report each. See
    /// [`FaultKind::DelayLoadReports`].
    pub fn delay_load_reports(mut self, node: usize, count: u64) -> Self {
        self.events.push(FaultEvent {
            node,
            kind: FaultKind::DelayLoadReports { count },
        });
        self
    }

    /// Make `node` execute its next `count` commands without sending
    /// the acknowledgement. See [`FaultKind::DropAcks`].
    pub fn drop_acks(mut self, node: usize, count: u64) -> Self {
        self.events.push(FaultEvent {
            node,
            kind: FaultKind::DropAcks { count },
        });
        self
    }

    /// Mark `node` slow by `factor`. See [`FaultKind::Slow`].
    pub fn slow(mut self, node: usize, factor: f64) -> Self {
        self.events.push(FaultEvent {
            node,
            kind: FaultKind::Slow { factor },
        });
        self
    }

    /// Compile the schedule into the runtime counters for one node. The
    /// plane for a node the schedule never mentions is inert
    /// ([`FaultPlane::is_inert`]), so fault-free nodes pay nothing.
    pub fn plane_for(&self, node: usize) -> FaultPlane {
        let mut plane = FaultPlane::default();
        for ev in self.events.iter().filter(|ev| ev.node == node) {
            match ev.kind {
                FaultKind::Kill { after_jobs } => {
                    // Two kill events on one node: the earlier trigger
                    // wins (the node is dead before the later fires).
                    plane.kill_after = Some(match plane.kill_after {
                        Some(prev) => prev.min(after_jobs),
                        None => after_jobs,
                    });
                }
                FaultKind::DropLoadReports { count } => plane.drop_loads += count,
                FaultKind::DelayLoadReports { count } => plane.delay_loads += count,
                FaultKind::DropAcks { count } => plane.drop_acks += count,
                FaultKind::Slow { factor } => plane.slow_factor *= factor,
            }
        }
        plane
    }
}

/// The runtime half of the fault plane: per-node counters a node-agent
/// consults at each logical decision point. Owned (and mutated) by one
/// agent thread; the schedule itself stays immutable.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlane {
    kill_after: Option<u64>,
    admitted: u64,
    drop_loads: u64,
    delay_loads: u64,
    drop_acks: u64,
    slow_factor: f64,
}

impl Default for FaultPlane {
    fn default() -> Self {
        FaultPlane {
            kill_after: None,
            admitted: 0,
            drop_loads: 0,
            delay_loads: 0,
            drop_acks: 0,
            slow_factor: 1.0,
        }
    }
}

impl FaultPlane {
    /// `true` when no fault will ever fire on this node — the fast path
    /// agents check once to skip all fault accounting.
    pub fn is_inert(&self) -> bool {
        self.kill_after.is_none()
            && self.drop_loads == 0
            && self.delay_loads == 0
            && self.drop_acks == 0
            && self.slow_factor == 1.0
    }

    /// The agent is about to admit `jobs` more jobs. Returns `true` if
    /// the scheduled kill triggers *before* any of them is admitted
    /// (the agent must die without admitting the batch); otherwise the
    /// admission counter advances.
    pub fn on_admit(&mut self, jobs: u64) -> bool {
        if let Some(after) = self.kill_after {
            if self.admitted + jobs > after {
                return true;
            }
        }
        self.admitted += jobs;
        false
    }

    /// Jobs admitted so far (for diagnostics).
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Should the next load report be dropped? Consumes one drop token.
    pub fn drop_load_report(&mut self) -> bool {
        if self.drop_loads > 0 {
            self.drop_loads -= 1;
            true
        } else {
            false
        }
    }

    /// Should the next load report be delayed (replaced by the previous
    /// report's value)? Consumes one delay token.
    pub fn delay_load_report(&mut self) -> bool {
        if self.delay_loads > 0 {
            self.delay_loads -= 1;
            true
        } else {
            false
        }
    }

    /// Should the next acknowledgement be withheld? Consumes one token.
    pub fn drop_ack(&mut self) -> bool {
        if self.drop_acks > 0 {
            self.drop_acks -= 1;
            true
        } else {
            false
        }
    }

    /// Multiplier the agent applies to its reported load (1.0 = honest).
    pub fn slow_factor(&self) -> f64 {
        self.slow_factor
    }
}

/// SplitMix64: the standard 64-bit seed mixer. Pure function of its
/// input — used so [`FaultSchedule::kill_random`] derives its choices
/// from the schedule seed alone, with no RNG state or dependency.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schedule_yields_inert_planes() {
        let faults = FaultSchedule::default();
        assert!(faults.is_empty());
        assert!(faults.plane_for(0).is_inert());
        assert_eq!(faults.plane_for(3), FaultPlane::default());
    }

    #[test]
    fn kill_triggers_exactly_after_the_quota() {
        let faults = FaultSchedule::new(1).kill(2, 3);
        let mut plane = faults.plane_for(2);
        assert!(!plane.is_inert());
        assert!(!plane.on_admit(1));
        assert!(!plane.on_admit(2)); // 3 admitted: at the quota, alive
        assert!(plane.on_admit(1), "the 4th admission kills");
        assert_eq!(plane.admitted(), 3, "the fatal batch is not admitted");
        // Other nodes stay inert.
        assert!(faults.plane_for(0).is_inert());
    }

    #[test]
    fn kill_triggers_mid_batch_without_admitting_it() {
        let mut plane = FaultSchedule::new(1).kill(0, 5).plane_for(0);
        assert!(!plane.on_admit(4));
        assert!(plane.on_admit(2), "batch would cross the quota");
        assert_eq!(plane.admitted(), 4);
    }

    #[test]
    fn earliest_of_two_kills_wins() {
        let plane = FaultSchedule::new(1).kill(0, 9).kill(0, 4).plane_for(0);
        let mut p = plane.clone();
        assert!(!p.on_admit(4));
        assert!(p.on_admit(1));
    }

    #[test]
    fn frame_faults_consume_their_tokens() {
        let mut plane = FaultSchedule::new(7)
            .drop_load_reports(1, 2)
            .delay_load_reports(1, 1)
            .drop_acks(1, 1)
            .plane_for(1);
        assert!(plane.drop_load_report());
        assert!(plane.drop_load_report());
        assert!(!plane.drop_load_report(), "tokens exhausted");
        assert!(plane.delay_load_report());
        assert!(!plane.delay_load_report());
        assert!(plane.drop_ack());
        assert!(!plane.drop_ack());
    }

    #[test]
    fn slow_factors_compose_multiplicatively() {
        let plane = FaultSchedule::new(7).slow(0, 2.0).slow(0, 3.0).plane_for(0);
        assert_eq!(plane.slow_factor(), 6.0);
        assert!(!plane.is_inert());
    }

    #[test]
    fn kill_random_is_a_pure_function_of_the_seed() {
        let a = FaultSchedule::new(42).kill_random(4, 10);
        let b = FaultSchedule::new(42).kill_random(4, 10);
        assert_eq!(a, b, "equal seeds pick identically");
        let FaultKind::Kill { after_jobs } = a.events()[0].kind else {
            panic!("kill_random schedules a kill");
        };
        assert!(a.events()[0].node < 4);
        assert!((1..=10).contains(&after_jobs));
        // A different seed (eventually) picks differently: probe a few.
        let distinct = (0..16u64).any(|s| FaultSchedule::new(s).kill_random(4, 10) != a);
        assert!(distinct, "seed actually feeds the choice");
    }

    #[test]
    fn schedule_is_comparable_and_cloneable() {
        let a = FaultSchedule::new(3).kill(1, 2).slow(0, 1.5);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.seed(), 3);
        assert_eq!(a.events().len(), 2);
    }
}
