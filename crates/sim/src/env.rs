//! Time-varying platform performance: the *dynamic* half of dynamic
//! asymmetry.
//!
//! An [`Environment`] turns the static topology (cluster base speeds)
//! into per-core speed functions of time by composing [`Modifier`]s:
//!
//! * [`Modifier::CoRunner`] — an interfering application time-shares one
//!   core (§5.1): the victim core's useful speed drops by the CPU share
//!   taken, and, for memory-intensive interference, the whole cluster
//!   experiences memory pressure;
//! * [`Modifier::DvfsSquareWave`] — periodic frequency switching of one
//!   cluster between a high and a low frequency (§5.2: 2035 MHz ↔
//!   345 MHz with a 5 s + 5 s cycle);
//! * [`Modifier::Slowdown`] — an arbitrary multiplicative slow-down over a
//!   core range and time window (used for the socket-level interference of
//!   §5.4 and for fault-injection tests).
//!
//! All modifiers are piecewise-constant in time, so the simulator can ask
//! for the [`Environment::next_change_after`] a given instant and
//! re-integrate running tasks only at those points.

use das_topology::{ClusterId, CoreId, Topology};
use std::sync::Arc;

/// One source of dynamic performance variation. Times are seconds of
/// simulated time since the start of the run; `until = f64::INFINITY`
/// means "for the whole run".
#[derive(Clone, Debug)]
pub enum Modifier {
    /// A co-running application pinned to `core`.
    CoRunner {
        /// The victim core.
        core: CoreId,
        /// Fraction of the victim's CPU taken by the co-runner (0..1).
        /// The paper's single-chain co-runner takes ~half: 0.5.
        cpu_share: f64,
        /// Memory-bandwidth pressure (0..1) applied to the victim's whole
        /// cluster. Non-zero for memory-intensive co-runners (the Copy
        /// chain of §5.1); zero for compute-bound ones.
        mem_pressure: f64,
        /// Start of the interference episode (inclusive).
        from: f64,
        /// End of the episode (exclusive).
        until: f64,
    },
    /// Square-wave DVFS on a cluster: frequency alternates between the
    /// nominal (factor 1.0) and `low_factor`, each phase lasting
    /// `half_period` seconds, starting in the *high* phase at `from`.
    DvfsSquareWave {
        /// The cluster whose frequency oscillates.
        cluster: ClusterId,
        /// Relative speed during the low phase (345/2035 ≈ 0.17 for the
        /// TX2 experiment).
        low_factor: f64,
        /// Length of one phase in seconds (5.0 in the paper: "a 10 s
        /// period for a full cycle (i.e. 5 s + 5 s)").
        half_period: f64,
        /// When the wave starts (high phase first).
        from: f64,
        /// When the wave stops.
        until: f64,
    },
    /// Multiplicative slow-down of a contiguous range of cores.
    Slowdown {
        /// First affected core.
        first_core: CoreId,
        /// Number of affected cores.
        num_cores: usize,
        /// Speed multiplier (0..1].
        factor: f64,
        /// Optional memory pressure applied to the affected clusters.
        mem_pressure: f64,
        /// Window start.
        from: f64,
        /// Window end.
        until: f64,
    },
}

impl Modifier {
    /// Convenience: the paper's §5.1 co-runner — a compute chain on one
    /// core for the whole run.
    pub fn compute_corunner(core: CoreId) -> Modifier {
        Modifier::CoRunner {
            core,
            cpu_share: 0.5,
            mem_pressure: 0.0,
            from: 0.0,
            until: f64::INFINITY,
        }
    }

    /// Convenience: the §5.1 memory-interference co-runner (Copy chain).
    pub fn memory_corunner(core: CoreId) -> Modifier {
        Modifier::CoRunner {
            core,
            cpu_share: 0.5,
            mem_pressure: 0.35,
            from: 0.0,
            until: f64::INFINITY,
        }
    }

    /// Convenience: the §5.2 TX2 DVFS wave (2035 MHz ↔ 345 MHz, 5 s+5 s)
    /// on `cluster`.
    pub fn tx2_dvfs(cluster: ClusterId) -> Modifier {
        Modifier::DvfsSquareWave {
            cluster,
            low_factor: 345.0 / 2035.0,
            half_period: 5.0,
            from: 0.0,
            until: f64::INFINITY,
        }
    }

    fn speed_factor(&self, topo: &Topology, core: CoreId, t: f64) -> f64 {
        match *self {
            Modifier::CoRunner {
                core: victim,
                cpu_share,
                from,
                until,
                ..
            } => {
                if core == victim && t >= from && t < until {
                    1.0 - cpu_share
                } else {
                    1.0
                }
            }
            Modifier::DvfsSquareWave {
                cluster,
                low_factor,
                half_period,
                from,
                until,
            } => {
                if topo.cluster_of(core).id != cluster || t < from || t >= until {
                    return 1.0;
                }
                let phase = ((t - from) / half_period).floor() as u64;
                if phase.is_multiple_of(2) {
                    1.0
                } else {
                    low_factor
                }
            }
            Modifier::Slowdown {
                first_core,
                num_cores,
                factor,
                from,
                until,
                ..
            } => {
                let r = first_core.0..first_core.0 + num_cores;
                if r.contains(&core.0) && t >= from && t < until {
                    factor
                } else {
                    1.0
                }
            }
        }
    }

    /// Memory pressure propagates across the victim's whole *memory
    /// domain* — every cluster sharing the DRAM controller ("the sharing
    /// of resources between applications", §1). On the TX2 both clusters
    /// share one LPDDR4 controller, so a streaming co-runner pressures
    /// the entire SoC; on a dual-socket Haswell each socket has its own
    /// controllers and pressure stays socket-local.
    fn mem_pressure(&self, topo: &Topology, cluster: ClusterId, t: f64) -> f64 {
        let domain = topo.cluster(cluster).mem_domain;
        match *self {
            Modifier::CoRunner {
                core,
                mem_pressure,
                from,
                until,
                ..
            } => {
                if topo.cluster_of(core).mem_domain == domain && t >= from && t < until {
                    mem_pressure
                } else {
                    0.0
                }
            }
            Modifier::Slowdown {
                first_core,
                num_cores,
                mem_pressure,
                from,
                until,
                ..
            } => {
                if mem_pressure == 0.0 || t < from || t >= until {
                    return 0.0;
                }
                let affected = (first_core.0..first_core.0 + num_cores)
                    .any(|c| topo.cluster_of(CoreId(c)).mem_domain == domain);
                if affected {
                    mem_pressure
                } else {
                    0.0
                }
            }
            Modifier::DvfsSquareWave { .. } => 0.0,
        }
    }

    /// Next instant strictly after `t` at which this modifier changes
    /// value, if any.
    fn next_change_after(&self, t: f64) -> Option<f64> {
        match *self {
            Modifier::CoRunner { from, until, .. } | Modifier::Slowdown { from, until, .. } => {
                if t < from {
                    Some(from)
                } else if t < until && until.is_finite() {
                    Some(until)
                } else {
                    None
                }
            }
            Modifier::DvfsSquareWave {
                half_period,
                from,
                until,
                ..
            } => {
                if t < from {
                    return Some(from);
                }
                if t >= until {
                    return None;
                }
                let mut k = ((t - from) / half_period).floor() + 1.0;
                let mut next = from + k * half_period;
                // Strict progress: when `t` lies exactly on a phase edge
                // whose quotient rounded down (e.g. t = 15·hp but
                // t/hp = 14.999…98 in binary), the naive formula returns
                // `next == t` and the event loop would reschedule the
                // same instant forever.
                while next <= t {
                    k += 1.0;
                    next = from + k * half_period;
                }
                if next < until {
                    Some(next)
                } else if until.is_finite() {
                    Some(until)
                } else {
                    None
                }
            }
        }
    }
}

/// The composed, time-varying performance state of the platform.
#[derive(Clone, Debug)]
pub struct Environment {
    topo: Arc<Topology>,
    mods: Vec<Modifier>,
}

impl Environment {
    /// No interference at all: every core runs at its cluster's static
    /// base speed forever.
    pub fn interference_free(topo: Arc<Topology>) -> Self {
        Environment {
            topo,
            mods: Vec::new(),
        }
    }

    /// An environment with the given modifiers.
    pub fn with_modifiers(topo: Arc<Topology>, mods: Vec<Modifier>) -> Self {
        Environment { topo, mods }
    }

    /// Append a modifier (builder style).
    pub fn and(mut self, m: Modifier) -> Self {
        self.mods.push(m);
        self
    }

    /// The modifiers in force.
    pub fn modifiers(&self) -> &[Modifier] {
        &self.mods
    }

    /// Effective speed of `core` at time `t`: static cluster base speed ×
    /// all modifier factors.
    pub fn speed(&self, core: CoreId, t: f64) -> f64 {
        let base = self.topo.cluster_of(core).base_speed;
        self.mods
            .iter()
            .fold(base, |s, m| s * m.speed_factor(&self.topo, core, t))
    }

    /// Memory pressure on `cluster` at `t` (sum over modifiers, clamped
    /// to 0.9 so rates never hit zero).
    pub fn mem_pressure(&self, cluster: ClusterId, t: f64) -> f64 {
        self.mods
            .iter()
            .map(|m| m.mem_pressure(&self.topo, cluster, t))
            .sum::<f64>()
            .min(0.9)
    }

    /// The earliest instant strictly after `t` at which any modifier
    /// changes, or `None` if the environment is constant from `t` on.
    pub fn next_change_after(&self, t: f64) -> Option<f64> {
        self.mods
            .iter()
            .filter_map(|m| m.next_change_after(t))
            .min_by(f64::total_cmp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx2() -> Arc<Topology> {
        Arc::new(Topology::tx2())
    }

    #[test]
    fn interference_free_uses_base_speeds() {
        let e = Environment::interference_free(tx2());
        assert_eq!(e.speed(CoreId(0), 0.0), 2.0); // denver
        assert_eq!(e.speed(CoreId(3), 123.0), 1.0); // a57
        assert_eq!(e.mem_pressure(ClusterId(0), 0.0), 0.0);
        assert_eq!(e.next_change_after(0.0), None);
    }

    #[test]
    fn corunner_halves_victim_core() {
        let e = Environment::interference_free(tx2()).and(Modifier::compute_corunner(CoreId(0)));
        assert_eq!(e.speed(CoreId(0), 1.0), 1.0); // 2.0 * 0.5
        assert_eq!(e.speed(CoreId(1), 1.0), 2.0); // untouched sibling
        assert_eq!(e.next_change_after(0.0), None); // infinite episode
    }

    #[test]
    fn memory_corunner_pressures_whole_memory_domain() {
        // TX2: one shared LPDDR4 controller — pressure reaches both
        // clusters.
        let e = Environment::interference_free(tx2()).and(Modifier::memory_corunner(CoreId(0)));
        assert!(e.mem_pressure(ClusterId(0), 0.0) > 0.0);
        assert!(e.mem_pressure(ClusterId(1), 0.0) > 0.0);
        // Dual-socket Haswell: per-socket controllers — pressure stays on
        // the victim's socket.
        let h = Arc::new(Topology::haswell_2x8());
        let e = Environment::interference_free(Arc::clone(&h))
            .and(Modifier::memory_corunner(CoreId(0)));
        assert!(e.mem_pressure(ClusterId(0), 0.0) > 0.0);
        assert_eq!(e.mem_pressure(ClusterId(1), 0.0), 0.0);
    }

    #[test]
    fn dvfs_square_wave_phases_and_changes() {
        let e = Environment::interference_free(tx2()).and(Modifier::tx2_dvfs(ClusterId(0)));
        let lo = 2.0 * 345.0 / 2035.0;
        assert_eq!(e.speed(CoreId(0), 0.0), 2.0); // high phase
        assert_eq!(e.speed(CoreId(0), 4.999), 2.0);
        assert!((e.speed(CoreId(0), 5.0) - lo).abs() < 1e-12); // low phase
        assert_eq!(e.speed(CoreId(0), 10.0), 2.0); // high again
                                                   // A57 cluster unaffected.
        assert_eq!(e.speed(CoreId(2), 5.0), 1.0);
        // Change points at every multiple of 5 s.
        assert_eq!(e.next_change_after(0.0), Some(5.0));
        assert_eq!(e.next_change_after(5.0), Some(10.0));
        assert_eq!(e.next_change_after(7.3), Some(10.0));
    }

    #[test]
    fn windowed_slowdown() {
        let e = Environment::interference_free(tx2()).and(Modifier::Slowdown {
            first_core: CoreId(2),
            num_cores: 2,
            factor: 0.25,
            mem_pressure: 0.0,
            from: 10.0,
            until: 20.0,
        });
        assert_eq!(e.speed(CoreId(2), 5.0), 1.0);
        assert_eq!(e.speed(CoreId(2), 10.0), 0.25);
        assert_eq!(e.speed(CoreId(3), 19.9), 0.25);
        assert_eq!(e.speed(CoreId(4), 15.0), 1.0); // outside range
        assert_eq!(e.speed(CoreId(2), 20.0), 1.0);
        assert_eq!(e.next_change_after(0.0), Some(10.0));
        assert_eq!(e.next_change_after(10.0), Some(20.0));
        assert_eq!(e.next_change_after(20.0), None);
    }

    #[test]
    fn dvfs_change_points_always_strictly_advance() {
        // Regression: a half-period that is not exactly representable in
        // binary (0.0796/16) used to produce `next_change_after(t) == t`
        // at the 15th edge, wedging the simulator in a same-instant
        // event loop.
        let e = Environment::interference_free(tx2()).and(Modifier::DvfsSquareWave {
            cluster: ClusterId(0),
            low_factor: 0.2,
            half_period: 0.0796 / 16.0,
            from: 0.0,
            until: f64::INFINITY,
        });
        let mut t = 0.0;
        for _ in 0..10_000 {
            let next = e
                .next_change_after(t)
                .expect("infinite wave keeps changing");
            assert!(next > t, "no progress at t={t}");
            t = next;
        }
    }

    #[test]
    fn pressure_clamped() {
        let mut env = Environment::interference_free(tx2());
        for _ in 0..5 {
            env = env.and(Modifier::memory_corunner(CoreId(0)));
        }
        assert!(env.mem_pressure(ClusterId(0), 0.0) <= 0.9);
    }

    #[test]
    fn modifiers_compose_multiplicatively() {
        let e = Environment::interference_free(tx2())
            .and(Modifier::compute_corunner(CoreId(0)))
            .and(Modifier::tx2_dvfs(ClusterId(0)));
        let lo = 345.0 / 2035.0;
        // Low DVFS phase and co-runner at once.
        assert!((e.speed(CoreId(0), 6.0) - 2.0 * 0.5 * lo).abs() < 1e-12);
    }
}
