//! Simulator configuration.

use crate::cost::{CostModel, UniformCost};
use das_core::{Policy, WeightRatio};
use das_topology::Topology;
use std::sync::Arc;

/// Fixed runtime overheads of the simulated XiTAO-like runtime, in
/// seconds of simulated time. Defaults are calibrated to the paper's
/// observation that a global PTT search costs "in the order of one
/// microsecond" on the TX2 (§4.1.1).
#[derive(Clone, Copy, Debug)]
pub struct SimParams {
    /// Latency between waking a sleeping core and its first queue poll.
    pub wake_latency: f64,
    /// Cost of a dequeue + place decision + AQ insertion (includes the
    /// PTT search).
    pub dispatch_overhead: f64,
    /// Cost of one successful steal (victim selection + CAS traffic).
    pub steal_overhead: f64,
    /// Upper bound on random victim probes per steal attempt, as a
    /// multiple of the core count.
    pub steal_tries_factor: usize,
    /// Absolute measurement jitter (seconds) added to the execution time
    /// the leader *reports* to the PTT — real clocks include cache
    /// state, interrupts and timer granularity. The task's actual
    /// duration is untouched; only the model's training signal is noisy.
    /// §5.3's finding that the PTT weight ratio matters for tiny tiles
    /// (whose true time is comparable to the jitter) but not for large
    /// ones depends on this. Zero (the default) keeps decision-logic
    /// tests exact; the Fig. 8 harness uses ~30 µs.
    pub obs_noise: f64,
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams {
            wake_latency: 0.5e-6,
            dispatch_overhead: 1.0e-6,
            steal_overhead: 2.0e-6,
            steal_tries_factor: 2,
            obs_noise: 0.0,
        }
    }
}

/// Everything needed to construct a [`crate::Simulator`].
#[derive(Clone)]
pub struct SimConfig {
    /// Platform shape (shared with the scheduler and environment).
    pub topo: Arc<Topology>,
    /// Scheduling policy under evaluation.
    pub policy: Policy,
    /// PTT weighted-update ratio (Fig. 8 sweep); defaults to the paper's
    /// 1:4.
    pub ratio: WeightRatio,
    /// Task cost model; defaults to [`UniformCost`] with 1 ms tasks.
    pub cost: Arc<dyn CostModel>,
    /// Runtime overheads.
    pub params: SimParams,
    /// Seed for the work-stealing RNG; equal seeds give bit-identical
    /// runs.
    pub seed: u64,
}

impl SimConfig {
    /// A config with defaults for everything but platform and policy.
    pub fn new(topo: Arc<Topology>, policy: Policy) -> Self {
        SimConfig {
            topo,
            policy,
            ratio: WeightRatio::PAPER,
            cost: Arc::new(UniformCost::new(1e-3)),
            params: SimParams::default(),
            seed: 0x5eed,
        }
    }

    /// Set the cost model.
    pub fn cost(mut self, cost: Arc<dyn CostModel>) -> Self {
        self.cost = cost;
        self
    }

    /// Set the PTT update ratio.
    pub fn ratio(mut self, ratio: WeightRatio) -> Self {
        self.ratio = ratio;
        self
    }

    /// Set the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the runtime overheads.
    pub fn params(mut self, params: SimParams) -> Self {
        self.params = params;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let topo = Arc::new(Topology::tx2());
        let c = SimConfig::new(topo, Policy::Rws)
            .seed(42)
            .ratio(WeightRatio::new(2, 5))
            .params(SimParams {
                wake_latency: 1e-6,
                ..SimParams::default()
            });
        assert_eq!(c.seed, 42);
        assert_eq!(c.ratio, WeightRatio::new(2, 5));
        assert_eq!(c.params.wake_latency, 1e-6);
    }
}
