//! Integration tests asserting the paper's *qualitative* claims on the
//! simulator — the ordering and adaptation results of §5, at reduced
//! scale (the bench binaries run the full-size versions).

use das::core::{Policy, TaskTypeId};
use das::dag::generators;
use das::sim::{Environment, Modifier, SimConfig, Simulator};
use das::topology::{ClusterId, CoreId, Topology};
use das::workloads::cost::PaperCost;
use das::workloads::synthetic::{self, Kernel};
use das::workloads::{heat, kmeans};
use std::sync::Arc;

fn tx2_sim(policy: Policy, seed: u64) -> Simulator {
    let topo = Arc::new(Topology::tx2());
    Simulator::new(
        SimConfig::new(topo, policy)
            .cost(Arc::new(PaperCost::new()))
            .seed(seed),
    )
}

fn corunner_env(topo: &Arc<Topology>, kernel: Kernel) -> Environment {
    let m = match kernel {
        Kernel::Copy => Modifier::memory_corunner(CoreId(0)),
        _ => Modifier::compute_corunner(CoreId(0)),
    };
    Environment::interference_free(Arc::clone(topo)).and(m)
}

fn throughput(
    policy: Policy,
    kernel: Kernel,
    parallelism: usize,
    env_of: impl Fn(&Arc<Topology>) -> Environment,
) -> f64 {
    let mut sim = tx2_sim(policy, 42);
    let topo = Arc::clone(&sim.config().topo);
    sim.set_env(env_of(&topo));
    let dag = synthetic::dag(kernel, parallelism, 20); // 1/20 of paper size
    sim.run(&dag).expect("run").throughput()
}

/// §5.1, Fig. 4: under a co-runner, the dynamic schedulers beat the
/// fixed-asymmetry ones, which beat random work stealing.
#[test]
fn fig4_ordering_dam_over_fa_over_rws() {
    for kernel in Kernel::ALL {
        for p in [2usize, 4] {
            let rws = throughput(Policy::Rws, kernel, p, |t| corunner_env(t, kernel));
            let fa = throughput(Policy::Fa, kernel, p, |t| corunner_env(t, kernel));
            let damc = throughput(Policy::DamC, kernel, p, |t| corunner_env(t, kernel));
            assert!(
                damc > fa * 1.02,
                "{kernel} P={p}: DAM-C {damc:.0} must beat FA {fa:.0}"
            );
            assert!(
                damc > rws * 1.05,
                "{kernel} P={p}: DAM-C {damc:.0} must beat RWS {rws:.0}"
            );
        }
    }
}

/// §5.1: "DAM-C achieves up to 3.5x speedup compared to RWS" for
/// MatMul — we assert a substantial (>1.5x) gap at low parallelism.
#[test]
fn fig4_matmul_headline_gap() {
    let rws = throughput(Policy::Rws, Kernel::MatMul, 2, |t| {
        corunner_env(t, Kernel::MatMul)
    });
    let damc = throughput(Policy::DamC, Kernel::MatMul, 2, |t| {
        corunner_env(t, Kernel::MatMul)
    });
    assert!(
        damc / rws > 1.5,
        "DAM-C/RWS = {:.2} (paper: up to 3.5x)",
        damc / rws
    );
}

/// Fig. 5(c)/(e): FA splits critical tasks 50/50 across the Denver cores
/// regardless of interference; DA steers nearly all of them to the
/// unperturbed Denver core 1.
#[test]
fn fig5_critical_task_distribution() {
    let dag = generators::layered(TaskTypeId(0), 2, 800);

    let mut fa = tx2_sim(Policy::Fa, 1);
    let topo = Arc::clone(&fa.config().topo);
    fa.set_env(corunner_env(&topo, Kernel::MatMul));
    let st = fa.run(&dag).unwrap();
    let s0 = st.high_priority_share_on_core(0);
    let s1 = st.high_priority_share_on_core(1);
    assert!(
        (s0 - 0.5).abs() < 0.05 && (s1 - 0.5).abs() < 0.05,
        "FA {s0:.2}/{s1:.2}"
    );

    let mut da = tx2_sim(Policy::Da, 1);
    da.set_env(corunner_env(&topo, Kernel::MatMul));
    let st = da.run(&dag).unwrap();
    assert!(
        st.high_priority_share_on_core(1) > 0.9,
        "DA must evacuate core 0: got {:?}",
        st.high_priority_places
    );

    let mut damp = tx2_sim(Policy::DamP, 1);
    damp.set_env(corunner_env(&topo, Kernel::MatMul));
    let st = damp.run(&dag).unwrap();
    assert!(
        st.high_priority_share_on_core(1) > 0.7,
        "DAM-P keeps most critical tasks on the fast core (paper: 92%): {:?}",
        st.high_priority_places
    );
    assert!(st.high_priority_share_on_core(0) < 0.15);
}

/// §5.2, Fig. 7: under DVFS the dynamic schedulers stay ahead, and at
/// low parallelism DAM-P is at least as good as DAM-C (it compensates
/// low parallelism with wide fast places).
#[test]
fn fig7_dvfs_ordering() {
    // The paper's 5 s + 5 s wave is sized for full-length runs; at this
    // test's reduced scale the whole run would fit inside the first
    // high phase and DVFS would never fire. Scale the period down with
    // the run so it spans several cycles — but keep each phase long
    // relative to the PTT's 1:4 relearn lag (a handful of critical-task
    // observations), or the model chases a wave it can never catch and
    // pinned placement loses to stealing's instant adaptation.
    let dvfs = |t: &Arc<Topology>| {
        Environment::interference_free(Arc::clone(t)).and(Modifier::DvfsSquareWave {
            cluster: ClusterId(0),
            low_factor: 345.0 / 2035.0,
            half_period: 0.4,
            from: 0.0,
            until: f64::INFINITY,
        })
    };
    for kernel in [Kernel::MatMul, Kernel::Copy] {
        let rws = throughput(Policy::Rws, kernel, 2, dvfs);
        let damc = throughput(Policy::DamC, kernel, 2, dvfs);
        let damp = throughput(Policy::DamP, kernel, 2, dvfs);
        assert!(damc > rws, "{kernel}: DAM-C {damc:.0} vs RWS {rws:.0}");
        assert!(
            damp > 0.92 * damc,
            "{kernel}: at P=2 DAM-P ({damp:.0}) should not trail DAM-C ({damc:.0})"
        );
    }
}

/// §5.4, Fig. 9: during socket interference, DAM-P iterations are faster
/// than RWS iterations; before the interference they are comparable.
#[test]
fn fig9_kmeans_interference_window() {
    let run = |policy: Policy| -> Vec<f64> {
        let topo = Arc::new(Topology::haswell_2x8());
        let mut sim = Simulator::new(
            SimConfig::new(Arc::clone(&topo), policy)
                .cost(Arc::new(PaperCost::new()))
                .seed(9),
        );
        let mut times = Vec::new();
        for it in 0..40usize {
            let env = if (10..30).contains(&it) {
                Environment::interference_free(Arc::clone(&topo)).and(Modifier::Slowdown {
                    first_core: CoreId(0),
                    num_cores: 8,
                    factor: 0.5,
                    mem_pressure: 0.2,
                    from: 0.0,
                    until: f64::INFINITY,
                })
            } else {
                Environment::interference_free(Arc::clone(&topo))
            };
            sim.set_env(env);
            let st = sim.run(&kmeans::iteration_dag(16, it as u64)).unwrap();
            times.push(st.makespan);
        }
        times
    };
    let rws = run(Policy::Rws);
    let damp = run(Policy::DamP);
    let avg = |v: &[f64], r: std::ops::Range<usize>| -> f64 {
        v[r.clone()].iter().sum::<f64>() / r.len() as f64
    };
    // During interference (skip the first iterations of the window — the
    // PTT needs a few observations to re-learn).
    let rws_mid = avg(&rws, 15..30);
    let damp_mid = avg(&damp, 15..30);
    assert!(
        damp_mid < rws_mid * 0.9,
        "DAM-P during interference {damp_mid:.3}s vs RWS {rws_mid:.3}s"
    );
}

/// Fig. 10: distributed heat — dynamic schedulers beat RWS, and
/// moldability (DAM-C/DAM-P) helps over plain DA.
#[test]
fn fig10_heat_ordering() {
    let run = |policy: Policy| -> f64 {
        let topo = Arc::new(Topology::haswell_cluster(4));
        let mut sim = Simulator::new(
            SimConfig::new(Arc::clone(&topo), policy)
                .cost(Arc::new(PaperCost::new()))
                .seed(5),
        );
        sim.set_env(
            Environment::interference_free(Arc::clone(&topo)).and(Modifier::Slowdown {
                first_core: CoreId(0),
                num_cores: 5,
                factor: 0.5,
                mem_pressure: 0.2,
                from: 0.0,
                until: f64::INFINITY,
            }),
        );
        let dag = heat::cluster_dag(4, 16, 12, 1e-3);
        sim.run(&dag).unwrap().throughput()
    };
    let rws = run(Policy::Rws);
    let da = run(Policy::Da);
    let damc = run(Policy::DamC);
    assert!(
        damc > rws * 1.2,
        "DAM-C {damc:.0} vs RWS {rws:.0} (paper +76%)"
    );
    assert!(
        damc > da,
        "moldability must help: DAM-C {damc:.0} vs DA {da:.0}"
    );
}

/// The co-runner-as-tasks ablation: modelling the interfering app as an
/// actual task chain sharing the simulator produces the same qualitative
/// DAM-over-RWS result as the environment model.
#[test]
fn corunner_as_tasks_same_ordering() {
    // Run the foreground DAG together with a background chain by merging
    // them into one DAG (the chain is independent).
    let merge = |p: usize| {
        // Foreground sized to dominate the serial background chain, so
        // the makespan reflects foreground scheduling rather than the
        // incompressible chain length.
        let mut d = synthetic::dag(Kernel::MatMul, p, 10);
        let chain = synthetic::corunner_chain(200);
        // Append chain nodes (ids shift by d.len()).
        let base = d.len() as u32;
        for (id, n) in chain.iter() {
            let new = d.add_task_meta(n.meta);
            assert_eq!(new.0, base + id.0);
        }
        for (id, n) in chain.iter() {
            for &s in &n.succs {
                d.add_edge(das::dag::TaskId(base + id.0), das::dag::TaskId(base + s.0));
            }
        }
        d
    };
    let run = |policy: Policy| {
        let mut sim = tx2_sim(policy, 3);
        sim.run(&merge(2)).unwrap().makespan
    };
    let damc = run(Policy::DamC);
    let rws = run(Policy::Rws);
    assert!(
        damc < rws,
        "DAM-C makespan {damc:.3}s vs RWS {rws:.3}s on the merged DAG"
    );
}
