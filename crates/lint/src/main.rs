//! CLI wrapper: `cargo run --release -p das-lint [-- --root <dir>]`.
//! Prints the orderings inventory, then any diagnostics; exits 1 if
//! the tree has unjustified violations.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = das_lint::workspace_root();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument `{other}` (usage: das-lint [--root <dir>])");
                return ExitCode::from(2);
            }
        }
    }

    let cfg = das_lint::Config::workspace(root);
    let report = match das_lint::run(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("das-lint: audit failed to read the tree: {e}");
            return ExitCode::from(2);
        }
    };

    print!("{}", das_lint::render_inventory(&report.inventory));
    if report.is_clean() {
        println!(
            "das-lint: clean ({} files with atomics)",
            report.inventory.len()
        );
        ExitCode::SUCCESS
    } else {
        for d in &report.diagnostics {
            eprintln!("{d}");
        }
        eprintln!("das-lint: {} violation(s)", report.diagnostics.len());
        ExitCode::FAILURE
    }
}
