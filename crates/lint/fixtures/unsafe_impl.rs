//! Rule 3 fixture: unsafe impl / unsafe fn hygiene.

pub struct Handle(*mut u8);

unsafe impl Send for Handle {}

// SAFETY: the pointer is owned and never aliased (fixture).
unsafe impl Sync for Handle {}

/// # Safety
/// The pointer must be valid for reads.
pub unsafe fn deref(h: &Handle) -> u8 {
    *h.0
}

pub unsafe fn deref_bare(h: &Handle) -> u8 {
    *h.0
}
