//! Real compute kernels, moldable SPMD-style: each participant of a
//! width-`w` place calls the kernel with its `rank`, and the kernel
//! partitions rows `rank, rank + w, rank + 2w, …` (cyclic) so any width
//! yields the same result.
//!
//! These are the executable counterparts of the three synthetic-DAG node
//! types of §4.2.2.

/// A square f32 tile, row-major — the unit of work of the MatMul kernel.
#[derive(Clone, Debug, PartialEq)]
pub struct Tile {
    n: usize,
    data: Vec<f32>,
}

impl Tile {
    /// A zero tile of side `n`.
    pub fn zero(n: usize) -> Self {
        Tile {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// A tile filled by `f(row, col)`.
    pub fn from_fn(n: usize, f: impl Fn(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                data.push(f(i, j));
            }
        }
        Tile { n, data }
    }

    /// Side length.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Element access.
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.n + j]
    }

    /// Mutable element access.
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        self.data[i * self.n + j] = v;
    }

    /// Raw data (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }
}

/// `C[rows rank::width] += A·B` — one participant's share of a tiled
/// GEMM. Rows are distributed cyclically so widths 1, 2 and 4 partition
/// evenly.
///
/// # Panics
/// Panics if tile sizes disagree or `rank >= width`.
pub fn matmul_rows(a: &Tile, b: &Tile, c: &mut Tile, rank: usize, width: usize) {
    assert!(rank < width, "rank {rank} out of width {width}");
    let n = a.n;
    assert_eq!(b.n, n);
    assert_eq!(c.n, n);
    for i in (rank..n).step_by(width) {
        for k in 0..n {
            let aik = a.get(i, k);
            for j in 0..n {
                let v = c.get(i, j) + aik * b.get(k, j);
                c.set(i, j, v);
            }
        }
    }
}

/// Full sequential GEMM (reference for tests).
pub fn matmul_ref(a: &Tile, b: &Tile) -> Tile {
    let mut c = Tile::zero(a.n);
    matmul_rows(a, b, &mut c, 0, 1);
    c
}

/// Streaming copy of this participant's cyclic share of `src` into `dst`.
///
/// # Panics
/// Panics if lengths disagree or `rank >= width`.
pub fn copy_rows(src: &[f32], dst: &mut [f32], row_len: usize, rank: usize, width: usize) {
    assert!(rank < width);
    assert_eq!(src.len(), dst.len());
    assert!(row_len > 0 && src.len().is_multiple_of(row_len));
    let rows = src.len() / row_len;
    for r in (rank..rows).step_by(width) {
        let s = r * row_len;
        dst[s..s + row_len].copy_from_slice(&src[s..s + row_len]);
    }
}

/// One 5-point Jacobi sweep over this participant's cyclic share of the
/// interior rows: `out = 0.25 (N + S + E + W)`. Boundary rows are copied
/// through unchanged by rank 0.
///
/// # Panics
/// Panics if the grids disagree in size, have fewer than 3 rows/cols, or
/// `rank >= width`.
pub fn stencil_rows(
    input: &[f64],
    out: &mut [f64],
    rows: usize,
    cols: usize,
    rank: usize,
    width: usize,
) {
    assert!(rank < width);
    assert_eq!(input.len(), rows * cols);
    assert_eq!(out.len(), rows * cols);
    assert!(rows >= 3 && cols >= 3, "stencil needs a 3x3 interior");
    if rank == 0 {
        out[..cols].copy_from_slice(&input[..cols]);
        out[(rows - 1) * cols..].copy_from_slice(&input[(rows - 1) * cols..]);
        for r in 1..rows - 1 {
            out[r * cols] = input[r * cols];
            out[r * cols + cols - 1] = input[r * cols + cols - 1];
        }
    }
    for r in (1 + rank..rows - 1).step_by(width) {
        for c in 1..cols - 1 {
            let i = r * cols + c;
            out[i] = 0.25 * (input[i - cols] + input[i + cols] + input[i - 1] + input[i + 1]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Tile::from_fn(8, |i, j| (i * 8 + j) as f32);
        let id = Tile::from_fn(8, |i, j| if i == j { 1.0 } else { 0.0 });
        let c = matmul_ref(&a, &id);
        assert_eq!(c, a);
    }

    #[test]
    fn matmul_partitioned_equals_reference() {
        let a = Tile::from_fn(16, |i, j| ((i + 2 * j) % 7) as f32);
        let b = Tile::from_fn(16, |i, j| ((3 * i + j) % 5) as f32);
        let reference = matmul_ref(&a, &b);
        for width in [1, 2, 4] {
            let mut c = Tile::zero(16);
            for rank in 0..width {
                matmul_rows(&a, &b, &mut c, rank, width);
            }
            assert_eq!(c, reference, "width {width}");
        }
    }

    #[test]
    fn copy_partitioned_copies_everything() {
        let src: Vec<f32> = (0..64).map(|x| x as f32).collect();
        for width in [1, 2, 4] {
            let mut dst = vec![0.0f32; 64];
            for rank in 0..width {
                copy_rows(&src, &mut dst, 8, rank, width);
            }
            assert_eq!(dst, src, "width {width}");
        }
    }

    #[test]
    fn stencil_partitioned_equals_reference() {
        let rows = 10;
        let cols = 12;
        let input: Vec<f64> = (0..rows * cols).map(|x| (x % 13) as f64).collect();
        let mut reference = vec![0.0; rows * cols];
        stencil_rows(&input, &mut reference, rows, cols, 0, 1);
        for width in [2, 3, 4] {
            let mut out = vec![0.0; rows * cols];
            for rank in 0..width {
                stencil_rows(&input, &mut out, rows, cols, rank, width);
            }
            assert_eq!(out, reference, "width {width}");
        }
    }

    #[test]
    fn stencil_averages_neighbours() {
        // A grid that is 0 everywhere except a single hot interior cell;
        // its four neighbours receive a quarter of it.
        let (rows, cols) = (5, 5);
        let mut input = vec![0.0; rows * cols];
        input[2 * cols + 2] = 4.0;
        let mut out = vec![0.0; rows * cols];
        stencil_rows(&input, &mut out, rows, cols, 0, 1);
        assert_eq!(out[cols + 2], 1.0);
        assert_eq!(out[3 * cols + 2], 1.0);
        assert_eq!(out[2 * cols + 1], 1.0);
        assert_eq!(out[2 * cols + 3], 1.0);
        assert_eq!(out[2 * cols + 2], 0.0);
    }

    #[test]
    #[should_panic]
    fn bad_rank_panics() {
        let a = Tile::zero(4);
        let b = Tile::zero(4);
        let mut c = Tile::zero(4);
        matmul_rows(&a, &b, &mut c, 2, 2);
    }
}
