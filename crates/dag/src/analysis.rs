//! DAG criticality analysis.
//!
//! The paper's schedulers *consume* task criticality but do not compute
//! it: "Unlike CATS, our work does not address the problem of determining
//! task criticality dynamically. Hence, FA and FAM-C rely on the static
//! scheme described in Section 2" (§4.2.3). This module supplies the
//! missing piece as an extension, following the CATS idea (Chronaki et
//! al., ICS'15): a task's *bottom level* is the length of the longest
//! path from it to any sink; tasks whose bottom level equals the DAG's
//! remaining critical path lie on the critical path and are marked high
//! priority.

use crate::{Dag, TaskId};
use das_core::Priority;

/// Bottom levels: `bl[t]` = number of tasks on the longest path from `t`
/// to a sink, counting `t` itself (so sinks have bottom level 1).
/// Returns an empty vector for cyclic graphs.
pub fn bottom_levels(dag: &Dag) -> Vec<usize> {
    let Some(order) = dag.topo_order() else {
        return Vec::new();
    };
    let mut bl = vec![1usize; dag.len()];
    for &id in order.iter().rev() {
        let node = dag.node(id);
        for &s in &node.succs {
            bl[id.index()] = bl[id.index()].max(1 + bl[s.index()]);
        }
    }
    bl
}

/// Top levels: `tl[t]` = number of tasks on the longest path from a root
/// to `t`, counting `t` (roots have top level 1).
pub fn top_levels(dag: &Dag) -> Vec<usize> {
    let Some(order) = dag.topo_order() else {
        return Vec::new();
    };
    let mut tl = vec![1usize; dag.len()];
    for &id in &order {
        let node = dag.node(id);
        for &s in &node.succs {
            tl[s.index()] = tl[s.index()].max(1 + tl[id.index()]);
        }
    }
    tl
}

/// One critical path (a longest root-to-sink chain), as a task sequence.
/// Ties break towards the lowest task id, making the result
/// deterministic. Empty for cyclic graphs.
pub fn critical_path(dag: &Dag) -> Vec<TaskId> {
    let bl = bottom_levels(dag);
    if bl.is_empty() {
        return Vec::new();
    }
    // Start: root with the maximal bottom level.
    let mut cur = match dag
        .roots()
        .into_iter()
        .max_by_key(|t| (bl[t.index()], std::cmp::Reverse(t.index())))
    {
        Some(t) => t,
        None => return Vec::new(),
    };
    let mut path = vec![cur];
    loop {
        let node = dag.node(cur);
        let next = node
            .succs
            .iter()
            .copied()
            .max_by_key(|t| (bl[t.index()], std::cmp::Reverse(t.index())));
        match next {
            Some(t) if bl[t.index()] + 1 == bl[cur.index()] => {
                path.push(t);
                cur = t;
            }
            _ => break,
        }
    }
    path
}

/// CATS-style automatic criticality marking: every task on a
/// maximal-bottom-level path becomes [`Priority::High`]; all others
/// [`Priority::Low`]. Overwrites existing priorities. Returns the number
/// of tasks marked critical.
///
/// With `exhaustive = false` only one critical path is marked (the
/// paper's experiments have exactly one critical task per layer); with
/// `exhaustive = true`, *every* task lying on *some* longest path is
/// marked, which matches CATS's task-criticality definition.
pub fn mark_critical(dag: &mut Dag, exhaustive: bool) -> usize {
    let bl = bottom_levels(dag);
    let tl = top_levels(dag);
    if bl.is_empty() {
        return 0;
    }
    let cp = bl
        .iter()
        .zip(&tl)
        .map(|(b, t)| b + t - 1)
        .max()
        .unwrap_or(0);

    let critical: Vec<TaskId> = if exhaustive {
        (0..dag.len())
            .filter(|&i| bl[i] + tl[i] - 1 == cp)
            .map(|i| TaskId(i as u32))
            .collect()
    } else {
        critical_path(dag)
    };
    let n = critical.len();
    for i in 0..dag.len() {
        let id = TaskId(i as u32);
        let prio = if critical.contains(&id) {
            Priority::High
        } else {
            Priority::Low
        };
        dag.set_priority(id, prio);
    }
    n
}

/// Work-weighted bottom levels: like [`bottom_levels`] but each task
/// contributes its `work_scale` instead of 1, so the result is the
/// longest *work* (not hop count) from the task to a sink. This is the
/// quantity HEFT-style rank functions use (`rank_u` with uniform
/// communication cost); [`mark_critical`] uses hop counts because the
/// paper's synthetic DAGs have uniform task weights.
pub fn weighted_bottom_levels(dag: &Dag) -> Vec<f64> {
    let Some(order) = dag.topo_order() else {
        return Vec::new();
    };
    let mut bl = vec![0.0f64; dag.len()];
    for &id in order.iter().rev() {
        let node = dag.node(id);
        let tail = node
            .succs
            .iter()
            .map(|s| bl[s.index()])
            .fold(0.0f64, f64::max);
        bl[id.index()] = node.work_scale + tail;
    }
    bl
}

/// Total work along the heaviest root-to-sink path (the weighted
/// critical-path length). Zero for empty or cyclic graphs.
pub fn weighted_critical_path_length(dag: &Dag) -> f64 {
    weighted_bottom_levels(dag)
        .into_iter()
        .fold(0.0f64, f64::max)
}

/// Work-weighted DAG parallelism: total work divided by the weighted
/// critical-path length — the generalisation of the paper's "total
/// amount of tasks divided by the length of the longest path" (§2) to
/// non-uniform tasks.
pub fn weighted_parallelism(dag: &Dag) -> f64 {
    let cp = weighted_critical_path_length(dag);
    if cp <= 0.0 {
        return 0.0;
    }
    let total: f64 = dag.nodes().iter().map(|n| n.work_scale).sum();
    total / cp
}

/// CATS-style marking on *weighted* levels: tasks on a maximal
/// weighted-path are marked high priority. `slack` relaxes the
/// definition: a task is critical when its path length is within
/// `slack × cp` of the critical path (``slack = 0`` marks only exact
/// critical-path members). Returns the number of critical tasks.
pub fn mark_critical_weighted(dag: &mut Dag, slack: f64) -> usize {
    assert!((0.0..1.0).contains(&slack), "slack must be in [0, 1)");
    let bl = weighted_bottom_levels(dag);
    if bl.is_empty() {
        return 0;
    }
    // Weighted top level: longest work path from a root *through* t.
    let order = dag.topo_order().expect("bl nonempty implies acyclic");
    let mut tl = vec![0.0f64; dag.len()];
    for &id in &order {
        let node = dag.node(id);
        let here = tl[id.index()] + node.work_scale;
        for &s in &node.succs {
            tl[s.index()] = tl[s.index()].max(here);
        }
    }
    let cp = weighted_critical_path_length(dag);
    let threshold = cp * (1.0 - slack);
    let mut marked = 0;
    for i in 0..dag.len() {
        let through = tl[i] + bl[i]; // work before + work from i to sink
        let id = TaskId(i as u32);
        if through >= threshold - 1e-12 {
            dag.set_priority(id, Priority::High);
            marked += 1;
        } else {
            dag.set_priority(id, Priority::Low);
        }
    }
    marked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use das_core::TaskTypeId;

    fn diamond() -> Dag {
        // a -> {b, c} -> d, plus a long tail d -> e -> f.
        let mut d = Dag::new("diamond");
        let ids: Vec<_> = (0..6)
            .map(|_| d.add_task(TaskTypeId(0), Priority::Low))
            .collect();
        d.add_edge(ids[0], ids[1]);
        d.add_edge(ids[0], ids[2]);
        d.add_edge(ids[1], ids[3]);
        d.add_edge(ids[2], ids[3]);
        d.add_edge(ids[3], ids[4]);
        d.add_edge(ids[4], ids[5]);
        d
    }

    #[test]
    fn bottom_and_top_levels() {
        let d = diamond();
        let bl = bottom_levels(&d);
        assert_eq!(bl, vec![5, 4, 4, 3, 2, 1]);
        let tl = top_levels(&d);
        assert_eq!(tl, vec![1, 2, 2, 3, 4, 5]);
    }

    #[test]
    fn critical_path_is_a_longest_chain() {
        let d = diamond();
        let cp = critical_path(&d);
        assert_eq!(cp.len(), d.longest_path_len());
        assert_eq!(cp.first(), Some(&TaskId(0)));
        assert_eq!(cp.last(), Some(&TaskId(5)));
        // Path edges must exist.
        for w in cp.windows(2) {
            assert!(d.node(w[0]).succs.contains(&w[1]));
        }
    }

    #[test]
    fn mark_critical_single_path() {
        let mut d = diamond();
        let n = mark_critical(&mut d, false);
        assert_eq!(n, 5);
        assert_eq!(d.num_high_priority(), 5);
        // Exactly one of b/c is critical.
        let b = d.node(TaskId(1)).meta.priority.is_high();
        let c = d.node(TaskId(2)).meta.priority.is_high();
        assert!(b ^ c);
    }

    #[test]
    fn mark_critical_exhaustive_marks_both_branches() {
        let mut d = diamond();
        let n = mark_critical(&mut d, true);
        // Both b and c lie on *a* longest path.
        assert_eq!(n, 6);
        assert_eq!(d.num_high_priority(), 6);
    }

    #[test]
    fn layered_dag_recovers_generator_criticality_count() {
        // The generator marks one task per layer; CATS marking finds a
        // single chain of the same length (the critical chain is through
        // the layer-releasing tasks).
        let mut d = generators::layered(TaskTypeId(0), 4, 50);
        let n = mark_critical(&mut d, false);
        assert_eq!(n, 50);
    }

    #[test]
    fn weighted_levels_reduce_to_hops_for_unit_work() {
        let d = diamond();
        let wbl = weighted_bottom_levels(&d);
        let bl = bottom_levels(&d);
        for (w, h) in wbl.iter().zip(&bl) {
            assert!((w - *h as f64).abs() < 1e-12);
        }
        assert!((weighted_critical_path_length(&d) - 5.0).abs() < 1e-12);
        // 6 unit tasks / cp 5.
        assert!((weighted_parallelism(&d) - 6.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_critical_path_follows_heavy_branch() {
        // a -> {b(×10), c(×1)} -> d: the heavy branch dominates.
        let mut d = Dag::new("heavy");
        let ids: Vec<_> = (0..4)
            .map(|_| d.add_task(TaskTypeId(0), Priority::Low))
            .collect();
        d.add_edge(ids[0], ids[1]);
        d.add_edge(ids[0], ids[2]);
        d.add_edge(ids[1], ids[3]);
        d.add_edge(ids[2], ids[3]);
        d.set_work_scale(ids[1], 10.0);
        assert!((weighted_critical_path_length(&d) - 12.0).abs() < 1e-12);
        let n = mark_critical_weighted(&mut d, 0.0);
        assert_eq!(n, 3);
        assert!(d.node(ids[1]).meta.priority.is_high());
        assert!(!d.node(ids[2]).meta.priority.is_high());
    }

    #[test]
    fn slack_widens_the_critical_set() {
        let mut d = Dag::new("slack");
        let ids: Vec<_> = (0..4)
            .map(|_| d.add_task(TaskTypeId(0), Priority::Low))
            .collect();
        d.add_edge(ids[0], ids[1]);
        d.add_edge(ids[0], ids[2]);
        d.add_edge(ids[1], ids[3]);
        d.add_edge(ids[2], ids[3]);
        d.set_work_scale(ids[1], 1.25); // light branch is within 20 %
        assert_eq!(mark_critical_weighted(&mut d, 0.0), 3);
        assert_eq!(mark_critical_weighted(&mut d, 0.2), 4);
    }

    #[test]
    fn weighted_marking_on_cholesky_prefers_potrf_chain() {
        let mut d = generators::cholesky_like(5);
        mark_critical_weighted(&mut d, 0.0);
        // The POTRF of the first panel starts every longest path.
        let (first_potrf, _) = d
            .iter()
            .find(|(_, n)| n.meta.ty == generators::CHOLESKY_TYPES[0])
            .unwrap();
        assert!(d.node(first_potrf).meta.priority.is_high());
    }

    #[test]
    fn cyclic_graph_degenerates_gracefully() {
        let mut d = Dag::new("cyc");
        let a = d.add_task(TaskTypeId(0), Priority::Low);
        let b = d.add_task(TaskTypeId(0), Priority::Low);
        d.add_edge(a, b);
        d.add_edge(b, a);
        assert!(bottom_levels(&d).is_empty());
        assert!(critical_path(&d).is_empty());
        assert_eq!(mark_critical(&mut d, false), 0);
    }
}
