//! Ready-made DAG shapes: the paper's synthetic benchmark (§4.2.2), the
//! interfering task chain (§5.1), and generic shapes for tests.

use crate::{Dag, TaskId};
use das_core::{Priority, TaskMeta, TaskTypeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The paper's synthetic DAG (§4.2.2): `layers` layers of `parallelism`
/// same-type tasks; in every layer exactly one task is marked critical
/// (high priority), and *the critical task* releases the whole next layer.
///
/// Consequences, as exploited in the evaluation:
/// * DAG parallelism == `parallelism` (for layers ≥ 2 it converges to it);
/// * the fraction of high-priority tasks is `1/parallelism` (50 % at
///   parallelism 2, matching §5.1);
/// * a delayed critical task stalls the release of the next layer, which
///   is exactly why criticality-aware placement matters.
pub fn layered(ty: TaskTypeId, parallelism: usize, layers: usize) -> Dag {
    assert!(parallelism >= 1 && layers >= 1);
    let mut d = Dag::new(format!("layered-p{parallelism}-l{layers}"));
    d.reserve(parallelism * layers);
    let mut prev_critical: Option<TaskId> = None;
    for layer in 0..layers {
        let mut critical = None;
        for i in 0..parallelism {
            let prio = if i == 0 {
                Priority::High
            } else {
                Priority::Low
            };
            let id = d.add_task(ty, prio);
            d.set_tag(id, layer as u64);
            if i == 0 {
                critical = Some(id);
            }
            if let Some(c) = prev_critical {
                d.add_edge(c, id);
            }
        }
        prev_critical = critical;
    }
    d
}

/// Synthetic DAG sized like the paper: the total task count is fixed per
/// kernel (32 000 MatMul / 10 000 Copy / 20 000 Stencil) and the number of
/// layers derived from the requested parallelism.
pub fn layered_total(ty: TaskTypeId, parallelism: usize, total_tasks: usize) -> Dag {
    let layers = (total_tasks / parallelism).max(1);
    layered(ty, parallelism, layers)
}

/// A single chain of `n` dependent tasks — the co-running interference
/// application of §5.1 ("a single chain of tasks composed of matrix
/// multiplication kernels").
pub fn chain(ty: TaskTypeId, n: usize) -> Dag {
    assert!(n >= 1);
    let mut d = Dag::new(format!("chain-{n}"));
    d.reserve(n);
    let mut prev: Option<TaskId> = None;
    for i in 0..n {
        let id = d.add_task(ty, Priority::Low);
        d.set_tag(id, i as u64);
        if let Some(p) = prev {
            d.add_edge(p, id);
        }
        prev = Some(id);
    }
    d
}

/// Fork–join: a source task releases `width` children per layer, all of
/// which join into a barrier task before the next layer. The barrier
/// tasks are critical. Used by tests and the runtime examples.
pub fn fork_join(ty: TaskTypeId, width: usize, layers: usize) -> Dag {
    assert!(width >= 1 && layers >= 1);
    let mut d = Dag::new(format!("forkjoin-w{width}-l{layers}"));
    let mut join = d.add_task(ty, Priority::High);
    for layer in 0..layers {
        let kids: Vec<_> = (0..width)
            .map(|_| {
                let id = d.add_task(ty, Priority::Low);
                d.set_tag(id, layer as u64);
                d.add_edge(join, id);
                id
            })
            .collect();
        let next = d.add_task(ty, Priority::High);
        d.set_tag(next, layer as u64);
        for k in kids {
            d.add_edge(k, next);
        }
        join = next;
    }
    d
}

/// A random layered DAG for property tests: `layers` layers of up to
/// `max_width` tasks; every task gets at least one predecessor in the
/// previous layer (so the DAG is connected layer-to-layer) plus random
/// extra edges with probability `p_extra`. Always acyclic by
/// construction.
pub fn random_layered(seed: u64, layers: usize, max_width: usize, p_extra: f64, types: u16) -> Dag {
    assert!(layers >= 1 && max_width >= 1 && types >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut d = Dag::new(format!("random-{seed}"));
    let mut prev: Vec<TaskId> = Vec::new();
    for layer in 0..layers {
        let width = rng.gen_range(1..=max_width);
        let mut cur = Vec::with_capacity(width);
        for _ in 0..width {
            let ty = TaskTypeId(rng.gen_range(0..types));
            let prio = if rng.gen_bool(0.2) {
                Priority::High
            } else {
                Priority::Low
            };
            let id = d.add_task(ty, prio);
            d.set_tag(id, layer as u64);
            if !prev.is_empty() {
                let p = prev[rng.gen_range(0..prev.len())];
                d.add_edge(p, id);
                for &q in &prev {
                    if q != p && rng.gen_bool(p_extra) {
                        d.add_edge(q, id);
                    }
                }
            }
            cur.push(id);
        }
        prev = cur;
    }
    d
}

/// A data-parallel iteration: `chunks` independent tasks joined by a
/// reduction task, as used by the K-means application. The task with the
/// largest work unit carries the high priority (§5.4: "assign the high
/// priority to the task containing the largest work unit"); chunk 0 gets
/// `large_scale`× the nominal work.
pub fn data_parallel_iteration(
    compute_ty: TaskTypeId,
    reduce_ty: TaskTypeId,
    chunks: usize,
    large_scale: f64,
    iteration: u64,
) -> Dag {
    assert!(chunks >= 1);
    let mut d = Dag::new(format!("datapar-it{iteration}"));
    let reduce = {
        let id = d.add_task_meta(TaskMeta::new(reduce_ty, Priority::Low));
        d.set_tag(id, iteration);
        id
    };
    for c in 0..chunks {
        let prio = if c == 0 {
            Priority::High
        } else {
            Priority::Low
        };
        let id = d.add_task(compute_ty, prio);
        d.set_tag(id, iteration);
        if c == 0 {
            d.set_work_scale(id, large_scale);
        }
        d.add_edge(id, reduce);
    }
    d
}

/// A 2-D wavefront over an `n × n` grid: task `(i, j)` depends on
/// `(i-1, j)` and `(i, j-1)`. The anti-diagonal sweep makes available
/// parallelism ramp from 1 up to `n` and back down to 1 — a classic
/// dynamic-parallelism stressor (Smith–Waterman, dense triangular
/// solves). The main diagonal is marked critical: it is the unique
/// longest path's backbone.
pub fn wavefront(ty: TaskTypeId, n: usize) -> Dag {
    assert!(n >= 1);
    let mut d = Dag::new(format!("wavefront-{n}x{n}"));
    d.reserve(n * n);
    let idx = |i: usize, j: usize| TaskId((i * n + j) as u32);
    for i in 0..n {
        for j in 0..n {
            let prio = if i == j {
                Priority::High
            } else {
                Priority::Low
            };
            let id = d.add_task(ty, prio);
            debug_assert_eq!(id, idx(i, j));
            d.set_tag(id, (i + j) as u64); // anti-diagonal index
        }
    }
    for i in 0..n {
        for j in 0..n {
            if i + 1 < n {
                d.add_edge(idx(i, j), idx(i + 1, j));
            }
            if j + 1 < n {
                d.add_edge(idx(i, j), idx(i, j + 1));
            }
        }
    }
    d
}

/// Task type ids used by [`cholesky_like`], in dependency order.
/// Four distinct types means four PTTs get trained — the multi-type
/// stressor the synthetic layered DAGs (single type per DAG) lack.
pub const CHOLESKY_TYPES: [TaskTypeId; 4] = [
    TaskTypeId(10), // POTRF: panel factorisation (critical path)
    TaskTypeId(11), // TRSM: triangular solve
    TaskTypeId(12), // SYRK: symmetric update
    TaskTypeId(13), // GEMM: trailing update
];

/// A tiled-Cholesky-factorisation task graph over a `b × b` lower-
/// triangular block matrix — the canonical irregular dense linear-algebra
/// DAG (as in PLASMA / OmpSs demos). POTRF tasks lie on the critical path
/// and are marked high priority; TRSM/SYRK/GEMM carry proportionally
/// scaled work (GEMM ≈ 2× SYRK ≈ 2× TRSM in flops per tile).
pub fn cholesky_like(b: usize) -> Dag {
    assert!(b >= 1);
    let [potrf, trsm, syrk, gemm] = CHOLESKY_TYPES;
    let mut d = Dag::new(format!("cholesky-{b}x{b}"));
    // writer[i][j] = last task that wrote block (i, j).
    let mut writer: Vec<Vec<Option<TaskId>>> = vec![vec![None; b]; b];
    let dep = |d: &mut Dag, from: Option<TaskId>, to: TaskId| {
        if let Some(f) = from {
            d.add_edge(f, to);
        }
    };
    for k in 0..b {
        let p = d.add_task(potrf, Priority::High);
        d.set_tag(p, k as u64);
        dep(&mut d, writer[k][k], p);
        writer[k][k] = Some(p);
        for row in writer.iter_mut().take(b).skip(k + 1) {
            let t = d.add_task(trsm, Priority::Low);
            d.set_tag(t, k as u64);
            dep(&mut d, Some(p), t);
            dep(&mut d, row[k], t);
            row[k] = Some(t);
        }
        for i in k + 1..b {
            for j in k + 1..=i {
                let (ty, scale) = if i == j { (syrk, 1.0) } else { (gemm, 2.0) };
                let u = d.add_task(ty, Priority::Low);
                d.set_tag(u, k as u64);
                d.set_work_scale(u, scale);
                dep(&mut d, writer[i][k], u);
                if i != j {
                    dep(&mut d, writer[j][k], u);
                }
                dep(&mut d, writer[i][j], u);
                writer[i][j] = Some(u);
            }
        }
    }
    d
}

/// A binary reduction tree over `leaves` inputs: leaves are independent
/// low-priority tasks; every internal combine node is high priority
/// (each lies on the critical path of its subtree and gates the root).
/// Parallelism halves at every level — the opposite profile from
/// [`wavefront`].
pub fn reduction_tree(ty: TaskTypeId, leaves: usize) -> Dag {
    assert!(leaves >= 1);
    let mut d = Dag::new(format!("reduce-{leaves}"));
    let mut frontier: Vec<TaskId> = (0..leaves)
        .map(|_| {
            let id = d.add_task(ty, Priority::Low);
            d.set_tag(id, 0);
            id
        })
        .collect();
    let mut level = 1u64;
    while frontier.len() > 1 {
        let mut next = Vec::with_capacity(frontier.len().div_ceil(2));
        for pair in frontier.chunks(2) {
            if pair.len() == 1 {
                next.push(pair[0]);
                continue;
            }
            let join = d.add_task(ty, Priority::High);
            d.set_tag(join, level);
            d.add_edge(pair[0], join);
            d.add_edge(pair[1], join);
            next.push(join);
        }
        frontier = next;
        level += 1;
    }
    d
}

/// A diamond: one source fans out to `width` parallel tasks which join
/// into one sink. Source and sink are critical. The smallest DAG that
/// exhibits both a fan-out and a synchronisation point.
pub fn diamond(ty: TaskTypeId, width: usize) -> Dag {
    assert!(width >= 1);
    let mut d = Dag::new(format!("diamond-{width}"));
    let src = d.add_task(ty, Priority::High);
    let sink = d.add_task(ty, Priority::High);
    for _ in 0..width {
        let mid = d.add_task(ty, Priority::Low);
        d.add_edge(src, mid);
        d.add_edge(mid, sink);
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layered_matches_paper_shape() {
        for p in 2..=6 {
            let d = layered(TaskTypeId(0), p, 200);
            d.validate().unwrap();
            assert_eq!(d.len(), p * 200);
            assert_eq!(d.longest_path_len(), 200);
            assert!((d.dag_parallelism() - p as f64).abs() < 1e-9);
            // One critical task per layer.
            assert_eq!(d.num_high_priority(), 200);
            // Only the critical task releases the next layer.
            for (id, n) in d.iter() {
                if n.meta.priority.is_high() && (n.tag as usize) < 199 {
                    assert_eq!(n.succs.len(), p, "critical {id} releases next layer");
                } else if !n.meta.priority.is_high() {
                    assert!(n.succs.is_empty());
                }
            }
        }
    }

    #[test]
    fn layered_total_sizes_match_section_4_2_2() {
        let mm = layered_total(TaskTypeId(0), 4, 32_000);
        assert_eq!(mm.len(), 32_000);
        let copy = layered_total(TaskTypeId(1), 5, 10_000);
        assert_eq!(copy.len(), 10_000);
        let st = layered_total(TaskTypeId(2), 2, 20_000);
        assert_eq!(st.len(), 20_000);
    }

    #[test]
    fn chain_is_sequential() {
        let d = chain(TaskTypeId(0), 50);
        d.validate().unwrap();
        assert_eq!(d.longest_path_len(), 50);
        assert!((d.dag_parallelism() - 1.0).abs() < 1e-9);
        assert_eq!(d.roots().len(), 1);
    }

    #[test]
    fn fork_join_valid() {
        let d = fork_join(TaskTypeId(0), 8, 10);
        d.validate().unwrap();
        assert_eq!(d.len(), 1 + 10 * 9);
        assert_eq!(d.longest_path_len(), 1 + 2 * 10);
    }

    #[test]
    fn random_layered_always_valid() {
        for seed in 0..20 {
            let d = random_layered(seed, 12, 6, 0.3, 3);
            d.validate().unwrap();
            assert!(d.longest_path_len() >= 12);
        }
    }

    #[test]
    fn data_parallel_iteration_shape() {
        let d = data_parallel_iteration(TaskTypeId(0), TaskTypeId(1), 16, 2.0, 7);
        d.validate().unwrap();
        assert_eq!(d.len(), 17);
        assert_eq!(d.num_high_priority(), 1);
        assert_eq!(d.roots().len(), 16);
        let (big, _) = d.iter().find(|(_, n)| n.meta.priority.is_high()).unwrap();
        assert_eq!(d.node(big).work_scale, 2.0);
        assert_eq!(d.node(big).tag, 7);
    }

    #[test]
    fn wavefront_shape_and_criticality() {
        let d = wavefront(TaskTypeId(0), 5);
        d.validate().unwrap();
        assert_eq!(d.len(), 25);
        // Longest path walks i+j from 0 to 8: 9 tasks.
        assert_eq!(d.longest_path_len(), 9);
        // Diagonal (5 tasks) is critical.
        assert_eq!(d.num_high_priority(), 5);
        // Exactly one root (0,0) and interior in-degrees of 2.
        assert_eq!(d.roots(), vec![TaskId(0)]);
        assert_eq!(d.node(TaskId(6)).num_preds, 2); // (1,1)
                                                    // The single-cell wavefront degenerates to one critical task.
        let one = wavefront(TaskTypeId(0), 1);
        assert_eq!(one.len(), 1);
        assert_eq!(one.num_high_priority(), 1);
    }

    #[test]
    fn cholesky_task_counts_match_formula() {
        for b in 1..=6 {
            let d = cholesky_like(b);
            d.validate().unwrap();
            // b POTRF + b(b-1)/2 TRSM + b(b-1)/2 SYRK + b(b-1)(b-2)/6 GEMM.
            let expect =
                b + b * (b - 1) / 2 + b * (b - 1) / 2 + b * (b - 1) * b.saturating_sub(2) / 6;
            assert_eq!(d.len(), expect, "b={b}");
            assert_eq!(d.num_high_priority(), b, "POTRF tasks are critical");
        }
    }

    #[test]
    fn cholesky_uses_four_task_types_with_scaled_work() {
        let d = cholesky_like(4);
        let mut types = d.task_types();
        types.sort_unstable();
        assert_eq!(types, CHOLESKY_TYPES.to_vec());
        // GEMM tasks (and only they) carry scale 2.0.
        for (_, n) in d.iter() {
            if n.meta.ty == CHOLESKY_TYPES[3] {
                assert_eq!(n.work_scale, 2.0);
            } else {
                assert_eq!(n.work_scale, 1.0);
            }
        }
    }

    #[test]
    fn cholesky_potrf_chain_orders_panels() {
        // POTRF k+1 must be reachable from POTRF k.
        let d = cholesky_like(5);
        let order = d.topo_order().unwrap();
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        let potrf: Vec<_> = d
            .iter()
            .filter(|(_, n)| n.meta.ty == CHOLESKY_TYPES[0])
            .map(|(id, n)| (n.tag, pos[&id]))
            .collect();
        for w in potrf.windows(2) {
            assert!(w[0].1 < w[1].1, "POTRF panels execute in k order");
        }
    }

    #[test]
    fn reduction_tree_halves_parallelism() {
        let d = reduction_tree(TaskTypeId(0), 16);
        d.validate().unwrap();
        assert_eq!(d.len(), 31); // 16 leaves + 15 internal
        assert_eq!(d.num_high_priority(), 15);
        assert_eq!(d.longest_path_len(), 5); // leaf + 4 combine levels
        assert_eq!(d.roots().len(), 16);
    }

    #[test]
    fn reduction_tree_handles_odd_and_unit_sizes() {
        let d = reduction_tree(TaskTypeId(0), 7);
        d.validate().unwrap();
        assert_eq!(d.len(), 7 + 6, "n leaves need n-1 combines");
        let single = reduction_tree(TaskTypeId(0), 1);
        assert_eq!(single.len(), 1);
        assert_eq!(single.num_high_priority(), 0);
    }

    #[test]
    fn diamond_shape() {
        let d = diamond(TaskTypeId(0), 8);
        d.validate().unwrap();
        assert_eq!(d.len(), 10);
        assert_eq!(d.longest_path_len(), 3);
        assert_eq!(d.num_high_priority(), 2);
        assert!((d.dag_parallelism() - 10.0 / 3.0).abs() < 1e-9);
    }
}
